"""Command-line verifier for the program catalogue.

Usage::

    python -m repro list
    python -m repro verify memory_access
    python -m repro verify tmr byzantine
    python -m repro verify --all
    python -m repro campaign token_ring --trials 20 --seed 0 --jsonl out.jsonl
    python -m repro campaign --report out.jsonl   # re-print a recorded verdict
    python -m repro monitor --replay out.jsonl    # detector-bank replay
    python -m repro bench            # quick perf smoke (CI scale)
    python -m repro bench --full     # the full recorded suite
    python -m repro lint --all --strict   # static pre-flight, CI gate
    python -m repro lint tmr --json       # machine-readable diagnostics
    python -m repro serve campaign.db --port 7357
    python -m repro worker --store http://127.0.0.1:7357   # pull jobs
    python -m repro campaign byzantine --trials 64 \\
        --distributed http://127.0.0.1:7357   # shard trials over workers
    python -m repro census token_ring --size 4 --shards 8 \\
        --distributed http://127.0.0.1:7357   # shard a code-space census

(``repro`` installed via ``pip install -e .`` works in place of
``python -m repro``.)

``verify`` runs every tolerance/detector/corrector certificate a
catalogue entry registers and prints the PASS/FAIL lines with
counterexamples — a one-command reproduction of each construction in
the paper.  ``campaign`` sweeps seeded random fault schedules over a
simulated scenario and reports the observed tolerance-class mix (see
:mod:`repro.campaigns`).  ``monitor`` replays a recorded campaign log
through the online detector-bank runtime (:mod:`repro.monitoring`) and
prints the syndrome/latency telemetry.  ``bench`` runs the perf-core benchmark
harness (``benchmarks/record.py``) from a source checkout — quick mode
by default, ``--full`` for the numbers recorded in ``BENCH_core.json``.
``lint`` runs the static analyzer (:mod:`repro.analysis`) over the same
catalogue — frame soundness, interference races, dead guards, spec
well-formedness — without exhaustive exploration; ``--strict`` makes
any unsuppressed error fail the command, which is how CI gates every
bundled program.  ``serve`` exposes the active store (and a job board)
over HTTP; ``worker`` pulls trial batches and census shards from a
served job queue; ``campaign --distributed URL`` and ``census
--distributed URL`` shard their work over that queue with results
byte-identical to the in-process paths (see
:mod:`repro.campaigns.distributed`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Iterable, List, Tuple

from .core import (
    CheckResult,
    TRUE,
    is_corrector,
    is_detector,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
)

__all__ = ["main", "CATALOGUE"]

#: name -> callable returning (description, [CheckResult factories])
CatalogueEntry = Callable[[], Tuple[str, List[Callable[[], CheckResult]]]]


def _memory_access():
    from .programs import memory_access

    m = memory_access.build()
    checks = [
        lambda: is_failsafe_tolerant(
            m.pf, m.fault_before_witness, m.spec, m.S_pf, m.T_pf
        ),
        lambda: is_nonmasking_tolerant(
            m.pn, m.fault_anytime, m.spec, m.S_pn, m.T_pn
        ),
        lambda: is_masking_tolerant(
            m.pm, m.fault_before_witness, m.spec, m.S_pm, m.T_pm
        ),
    ]
    return "memory access ladder (paper Figures 1-3)", checks


def _tmr():
    from .programs import tmr

    t = tmr.build()
    checks = [
        lambda: is_detector(
            t.detector_eval, t.witness_dr, t.detection_dr, t.span_inputs
        ),
        lambda: is_failsafe_tolerant(
            t.dr_ir, t.faults, t.spec, t.invariant, t.span
        ),
        lambda: is_masking_tolerant(
            t.tmr, t.faults, t.spec, t.invariant, t.span
        ),
    ]
    return "triple modular redundancy (paper §6.1)", checks


def _byzantine():
    from .programs import byzantine

    b = byzantine.build()
    checks = [
        lambda: is_failsafe_tolerant(
            b.failsafe, b.faults, b.spec, b.invariant, b.span
        ),
        lambda: is_masking_tolerant(
            b.masking, b.faults, b.spec, b.invariant, b.span
        ),
    ]
    return "Byzantine agreement, n=4 f=1 (paper §6.2)", checks


def _token_ring():
    from .programs import token_ring

    r = token_ring.build(4)
    checks = [
        lambda: is_nonmasking_tolerant(
            r.ring, r.faults, r.spec, r.invariant, TRUE
        ),
        lambda: is_corrector(r.ring, r.invariant, r.invariant, TRUE),
    ]
    return "Dijkstra's K-state token ring (self-stabilization)", checks


def _mutual_exclusion():
    from .core import ToleranceRequirement, is_multitolerant
    from .programs import mutual_exclusion

    x = mutual_exclusion.build(3)
    checks = [
        lambda: is_masking_tolerant(
            x.tolerant, x.faults, x.spec, x.invariant, x.span
        ),
        lambda: is_multitolerant(
            x.multitolerant, x.spec_strong, x.invariant,
            (
                ToleranceRequirement(x.faults, "masking", x.span),
                ToleranceRequirement(
                    x.duplication, "masking", x.span_duplication
                ),
            ),
        ),
    ]
    return "token mutual exclusion (+ multitolerance)", checks


def _leader_election():
    from .programs import leader_election

    e = leader_election.build((3, 1, 2))
    checks = [
        lambda: is_nonmasking_tolerant(
            e.program, e.faults, e.spec, e.invariant, TRUE
        ),
    ]
    return "max-propagation leader election", checks


def _termination_detection():
    from .programs import termination_detection

    t = termination_detection.build(3)
    checks = [
        lambda: is_detector(t.detector, t.done, t.terminated, t.from_),
    ]
    return "scan-based termination detection (a pure detector)", checks


def _distributed_reset():
    from .programs import distributed_reset

    d = distributed_reset.build(3, 2)
    checks = [
        lambda: is_nonmasking_tolerant(
            d.program, d.faults, d.spec, d.invariant, d.span
        ),
    ]
    return "session-number distributed reset (a distributed corrector)", checks


def _tree_maintenance():
    from .programs import tree_maintenance

    t = tree_maintenance.build()
    checks = [
        lambda: is_nonmasking_tolerant(
            t.program, t.faults, t.spec, t.invariant, TRUE
        ),
        lambda: is_corrector(t.program, t.invariant, t.invariant, TRUE),
    ]
    return "self-stabilizing BFS spanning tree (tree maintenance)", checks


def _barrier():
    from .programs import barrier

    b = barrier.build(3)
    checks = [
        lambda: is_failsafe_tolerant(
            b.intolerant, b.faults, b.spec, b.invariant, b.span
        ),
        lambda: is_masking_tolerant(
            b.tolerant, b.faults, b.spec, b.invariant, b.span
        ),
    ]
    return "barrier computation with a re-announce corrector", checks


def _failure_detector():
    from .core.fairness import check_leads_to
    from .failure_detectors import build

    fd = build(limit=2)

    def completeness():
        ts = fd.faults.system(fd.program, fd.from_)
        return check_leads_to(
            ts, fd.crashed, fd.suspected,
            description="completeness: crashed leads-to suspected",
        )

    checks = [
        lambda: is_detector(fd.program, fd.suspected, fd.timed_out, fd.from_),
        completeness,
    ]
    return "heartbeat failure detector (Chandra-Toueg comparison)", checks


CATALOGUE: Dict[str, CatalogueEntry] = {
    "memory_access": _memory_access,
    "tmr": _tmr,
    "byzantine": _byzantine,
    "token_ring": _token_ring,
    "mutual_exclusion": _mutual_exclusion,
    "leader_election": _leader_election,
    "termination_detection": _termination_detection,
    "distributed_reset": _distributed_reset,
    "tree_maintenance": _tree_maintenance,
    "barrier": _barrier,
    "failure_detector": _failure_detector,
}


def _verify(names: Iterable[str], out=sys.stdout) -> int:
    failures = 0
    for name in names:
        try:
            entry = CATALOGUE[name]
        except KeyError:
            print(f"unknown catalogue entry {name!r}; try 'list'", file=out)
            return 2
        description, checks = entry()
        print(f"== {name}: {description}", file=out)
        for check in checks:
            result = check()
            print(str(result), file=out)
            if not result:
                failures += 1
        print(file=out)
    if failures:
        print(f"{failures} check(s) FAILED", file=out)
        return 1
    print("all checks passed", file=out)
    return 0


def _store_stats_line(out=sys.stdout) -> None:
    """One summary line of certificate-store traffic, printed after a
    verification run when a store is active.  Goes to ``out`` so scripts
    (and the CI warm-cache smoke job) can grep it."""
    from .store import backend as store_backend

    if store_backend.active_store() is None:
        return
    stats = store_backend.stats()
    line = (
        f"store: {stats.get('hits', 0)} hits, "
        f"{stats.get('misses', 0)} misses, {stats.get('puts', 0)} puts"
    )
    replayed = []
    for event, label in (
        ("verdict_hits", "verdicts"),
        ("obligation_hits", "obligations"),
        ("obligations_reused", "frame-reused"),
        ("graph_hits", "graphs"),
        ("graph_reassembled", "reassembled"),
        ("lint_report_hits", "lint-reports"),
        ("lint_action_hits", "lint-actions"),
    ):
        count = stats.get(event, 0)
        if count:
            replayed.append(f"{count} {label}")
    if replayed:
        line += " (" + ", ".join(replayed) + ")"
    print(line, file=out)


def _serve(args, out=sys.stdout) -> int:
    """Run the blocking cache front end over a local artifact store."""
    from .store.serve import serve

    try:
        serve(
            args.store, host=args.host, port=args.port,
            announce=lambda message: print(message, file=out),
        )
    except OSError as exc:
        print(f"cannot serve {args.store!r}: {exc}", file=out)
        return 2
    return 0


def _campaign(args, out=sys.stdout) -> int:
    from .campaigns import Campaign, SCENARIOS

    if args.report:
        from .campaigns import format_verdict, load_summary

        try:
            summary = load_summary(args.report)
        except (OSError, ValueError) as exc:
            print(f"cannot read campaign log {args.report!r}: {exc}", file=out)
            return 2
        if summary is None:
            print(
                f"no campaign_end summary in {args.report!r} "
                "(incomplete or non-campaign log)",
                file=out,
            )
            return 1
        print(format_verdict(summary), file=out)
        return 0

    if args.list or not args.scenario:
        for name, scenario in sorted(SCENARIOS.items()):
            print(f"{name:16s} {scenario.description}", file=out)
        return 0 if args.list else 2
    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        print(
            f"unknown campaign scenario {args.scenario!r}; "
            f"known scenarios: {known}",
            file=out,
        )
        return 2

    try:
        stream = open(args.jsonl, "w", encoding="utf-8") if args.jsonl else None
    except OSError as exc:
        print(f"cannot write JSONL log {args.jsonl!r}: {exc}", file=out)
        return 2
    distributed = None
    try:
        if args.distributed:
            from .campaigns import DistributedCampaign

            distributed = DistributedCampaign(
                SCENARIOS[args.scenario],
                trials=args.trials,
                seed=args.seed,
                budget=args.budget,
                horizon=args.horizon,
                trial_timeout=args.trial_timeout,
                stream=stream,
                base_url=args.distributed,
                batch_size=args.batch_size,
                target_lease_s=args.target_lease,
                deadline_s=args.deadline,
                fallback_workers=args.workers,
            )
            campaign = distributed.campaign
            result = distributed.run()
        else:
            campaign = Campaign(
                SCENARIOS[args.scenario],
                trials=args.trials,
                seed=args.seed,
                budget=args.budget,
                horizon=args.horizon,
                trial_timeout=args.trial_timeout,
                stream=stream,
                workers=args.workers,
            )
            result = campaign.run()
    finally:
        if stream is not None:
            stream.close()
    print(result.format(), file=out)
    if distributed is not None:
        if distributed.degraded:
            print(
                f"   distributed: server {args.distributed!r} unavailable, "
                "ran in-process",
                file=out,
            )
        else:
            print(
                f"   distributed: {distributed.batches_total} batches, "
                f"{distributed.batches_from_store} from store",
                file=out,
            )
    if args.jsonl:
        print(f"   telemetry: {args.jsonl} "
              f"({len(campaign.log.events)} events)", file=out)
    return 0


def _worker(args, out=sys.stdout) -> int:
    """Run a pull-based job worker against a 'repro serve' front end."""
    from .campaigns.distributed import worker_loop

    queues = tuple(q for q in args.queues.split(",") if q)
    if not queues:
        print("no queues to poll; pass --queues campaign,census", file=out)
        return 2
    announce = (lambda message: print(message, file=out)) \
        if args.verbose else None
    try:
        handled = worker_loop(
            args.store,
            queues=queues,
            worker_id=args.id,
            once=args.once,
            lease_s=args.lease,
            announce=announce,
        )
    except KeyboardInterrupt:
        print("worker stopped", file=out)
        return 0
    print(f"worker processed {handled} job(s)", file=out)
    return 0


def _census(args, out=sys.stdout) -> int:
    """Exact reachable-state census, optionally sharded over workers."""
    from .campaigns.distributed import CENSUS_WORKLOADS, distributed_census

    if args.workload not in CENSUS_WORKLOADS:
        known = ", ".join(sorted(CENSUS_WORKLOADS))
        print(
            f"unknown census workload {args.workload!r}; known: {known}",
            file=out,
        )
        return 2
    if args.workload == "token_ring":
        params = {"size": args.size, "k": args.k}
    else:
        params = {"k": args.k if args.k is not None else 3}
    if args.store is not None:
        from .store import backend as store_backend

        store_backend.set_active_store(args.store)
    try:
        reach, stats = distributed_census(
            args.workload,
            params=params,
            shards=args.shards,
            base_url=args.distributed,
            max_states=args.max_states,
            deadline_s=args.deadline,
        )
    except (RuntimeError, TimeoutError) as exc:
        print(f"census failed: {exc}", file=out)
        return 1
    print(
        f"census {args.workload}{params}: {reach.states} states "
        f"({reach.levels} levels, {reach.edges} successor rows)",
        file=out,
    )
    mode = "in-process" if stats["degraded"] else "distributed"
    print(
        f"   shards: {stats['shards']} ({mode}), "
        f"{stats['from_store']} from store, {stats['computed']} computed",
        file=out,
    )
    return 0


def _monitor(args, out=sys.stdout) -> int:
    """Replay recorded telemetry through the online monitoring runtime.

    ``--replay`` takes a ``repro campaign --jsonl`` log; ``--events``
    takes a raw runtime-event JSONL file (``{"time", "kind",
    "writes"}`` objects).  Either way the events stream through the
    frame-aware incremental path and the run ends with the bank's
    telemetry report (fire counts, syndrome transitions, detection
    latency percentiles, events/sec).
    """
    from .monitoring import (
        MonitorRuntime,
        SyndromeDecoder,
        TelemetrySink,
        campaign_bank,
        format_monitor_summary,
        iter_campaign_events,
        normalize_event,
    )

    if not args.replay and not args.events:
        print("nothing to monitor; pass --replay LOG or --events LOG", file=out)
        return 2

    monitors = [m for m in args.monitors.split(",") if m]
    bank = campaign_bank(monitors)
    decoder = SyndromeDecoder.for_bank(bank)
    for j, detector in enumerate(bank.detector_names):
        decoder.register(1 << j, name=f"correct[{detector}]")

    try:
        stream = open(args.out, "w", encoding="utf-8") if args.out else None
    except OSError as exc:
        print(f"cannot write telemetry {args.out!r}: {exc}", file=out)
        return 2
    try:
        telemetry = TelemetrySink(bank.detector_names, stream=stream)
        runtime = MonitorRuntime(bank, decoder=decoder, telemetry=telemetry)
        if args.replay:
            events = iter_campaign_events(args.replay)
        else:
            from .campaigns import read_events

            events = (
                event
                for record in read_events(args.events)
                for event in [normalize_event(record)]
                if event is not None
            )
        try:
            summary = runtime.run_sync(events)
        except (OSError, ValueError, KeyError) as exc:
            print(f"replay failed: {type(exc).__name__}: {exc}", file=out)
            return 2
        telemetry.write_summary(summary["events"], summary["wall_s"])
    finally:
        if stream is not None:
            stream.close()
    print(format_monitor_summary(summary), file=out)
    print(
        f"   final syndrome: {runtime.bank.describe(runtime.syndrome)}",
        file=out,
    )
    if args.out:
        print(f"   telemetry: {args.out}", file=out)
    return 0


def _bench(args, out=sys.stdout) -> int:
    """Run the perf-core benchmark harness in place.

    The harness lives in ``benchmarks/record.py`` next to the source
    tree (it is a measurement script, not library code), so ``bench``
    only works from a checkout — an installed-only environment gets a
    clear error instead of a stack trace.
    """
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "benchmarks" / "record.py"
    if not script.is_file():
        print(
            f"benchmark harness not found at {script} — "
            "'repro bench' needs a source checkout",
            file=out,
        )
        return 2
    spec = importlib.util.spec_from_file_location("_repro_bench_record", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    forwarded: List[str] = []
    if not args.full:
        forwarded.append("--quick")
    if args.repeat is not None:
        forwarded += ["--repeat", str(args.repeat)]
    if args.workers is not None:
        forwarded += ["--workers", str(args.workers)]
    if args.backend is not None:
        forwarded += ["--backend", args.backend]
    if args.cold:
        forwarded.append("--cold")
    if args.warm:
        forwarded.append("--warm")
    if args.store is not None:
        forwarded += ["--store", args.store]
    if args.output is not None:
        forwarded += ["--output", args.output]
    elif not args.full:
        # quick numbers are measured at a smaller scale — don't clobber
        # the committed full-scale BENCH_core.json with them
        import os
        import tempfile

        fd, path = tempfile.mkstemp(prefix="repro_bench_quick_", suffix=".json")
        os.close(fd)
        forwarded += ["--output", path]
    return module.main(forwarded)


def _lint(args, out=sys.stdout) -> int:
    from .analysis import (
        LINT_CATALOGUE,
        CatalogueCoverageError,
        LintConfig,
        lint,
        lint_targets,
        render_json,
        render_sarif,
        render_text,
        uncovered_modules,
    )

    names = list(LINT_CATALOGUE) if args.all else args.names
    if not names:
        print("nothing to lint; pass entry names or --all", file=out)
        return 2

    if args.store is not None:
        from .store import backend as store_backend

        store_backend.set_active_store(args.store)

    if args.all:
        # the coverage contract behind --all: refuse to call the whole
        # catalogue clean while a bundled scenario has no lint entry
        missing = uncovered_modules()
        if missing:
            print(CatalogueCoverageError(
                f"scenario module(s) {missing} in repro.programs have "
                f"no lint catalogue entry; add a lint_entry(..., "
                f"covers=...) builder or an EXEMPT_MODULES reason"
            ), file=out)
            return 2

    config = LintConfig(
        probe_limit=args.probe_limit,
        seed=args.seed,
        suggest_frames=args.suggest_frames,
        symbolic=not args.no_symbolic,
    )
    reports = []
    for name in names:
        if name not in LINT_CATALOGUE:
            print(f"unknown catalogue entry {name!r}; try 'list'", file=out)
            return 2
        for target in lint_targets(name):
            reports.append(lint(target, config))

    fmt = "json" if args.json else args.format
    if fmt == "json":
        render_json(reports, out)
    elif fmt == "sarif":
        render_sarif(reports, out)
    else:
        render_text(reports, out, verbose=args.verbose)
        # the stats line is text-only: appending it to a JSON/SARIF
        # document would corrupt it for downstream parsers
        _store_stats_line(out)

    if args.strict and any(report.errors() for report in reports):
        return 1
    return 0


def main(argv: List[str] = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="verify the paper's constructions from the command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list catalogue entries")
    verify_parser = subparsers.add_parser(
        "verify", help="run the certificates for catalogue entries"
    )
    verify_parser.add_argument("names", nargs="*", help="entries to verify")
    verify_parser.add_argument(
        "--all", action="store_true", help="verify the whole catalogue"
    )
    verify_parser.add_argument(
        "--store", metavar="SPEC", default=None,
        help="certificate store to read/write (a .sqlite path, a "
             "directory, ':memory:', or an http URL of 'repro serve'; "
             "default: $REPRO_STORE if set)",
    )
    campaign_parser = subparsers.add_parser(
        "campaign",
        help="sweep seeded random fault schedules over a simulated scenario",
    )
    campaign_parser.add_argument(
        "scenario", nargs="?", help="scenario name (omit with --list)"
    )
    campaign_parser.add_argument(
        "--trials", type=int, default=20, help="number of seeded trials"
    )
    campaign_parser.add_argument(
        "--seed", type=int, default=0, help="master campaign seed"
    )
    campaign_parser.add_argument(
        "--jsonl", metavar="PATH", help="write the JSONL event log here"
    )
    campaign_parser.add_argument(
        "--budget", type=int, default=None,
        help="fault events per trial (default: scenario's)",
    )
    campaign_parser.add_argument(
        "--horizon", type=float, default=None,
        help="simulated-time horizon per trial (default: scenario's)",
    )
    campaign_parser.add_argument(
        "--trial-timeout", type=float, default=60.0,
        help="wall-clock seconds per trial before outcome=timeout",
    )
    campaign_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for trials (same verdicts for any count)",
    )
    campaign_parser.add_argument(
        "--list", action="store_true", help="list campaign scenarios"
    )
    campaign_parser.add_argument(
        "--report", metavar="PATH",
        help="print the verdict recorded in an existing JSONL log "
             "(no trials are run)",
    )
    campaign_parser.add_argument(
        "--distributed", metavar="URL", default=None,
        help="run trial batches through a 'repro serve' job queue at "
             "this URL (verdicts identical to in-process; degrades to "
             "in-process if the server is unreachable)",
    )
    campaign_parser.add_argument(
        "--batch-size", type=int, default=None,
        help="trials per distributed batch (default: adaptive toward "
             "--target-lease seconds per batch)",
    )
    campaign_parser.add_argument(
        "--target-lease", type=float, default=5.0,
        help="target seconds of work per adaptive distributed batch",
    )
    campaign_parser.add_argument(
        "--deadline", type=float, default=None,
        help="abort the distributed run after this many wall-clock "
             "seconds with batches still outstanding",
    )
    monitor_parser = subparsers.add_parser(
        "monitor",
        help="replay recorded telemetry through the detector-bank runtime",
    )
    monitor_parser.add_argument(
        "--replay", metavar="PATH",
        help="campaign JSONL log to replay (from 'repro campaign --jsonl')",
    )
    monitor_parser.add_argument(
        "--events", metavar="PATH",
        help="raw runtime-event JSONL file to ingest",
    )
    monitor_parser.add_argument(
        "--monitors", default="safety,legitimacy",
        help="comma-separated monitor/variable names the bank tracks",
    )
    monitor_parser.add_argument(
        "--out", metavar="PATH",
        help="write structured monitoring telemetry (JSONL) here",
    )
    bench_parser = subparsers.add_parser(
        "bench",
        help="run the perf-core benchmarks (quick smoke by default)",
    )
    bench_parser.add_argument(
        "--full", action="store_true",
        help="full suite at recorded scale (default: --quick smoke)",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=None,
        help="repetitions per suite (best-of; harness default)",
    )
    bench_parser.add_argument(
        "--output", default=None,
        help="where to write the JSON record (harness default)",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=None,
        help="process count for sharded exploration (default: in-process)",
    )
    bench_parser.add_argument(
        "--backend", choices=("auto", "numpy", "pure", "interpreted"),
        default=None,
        help="kernel backend for every suite (default: auto selection)",
    )
    bench_parser.add_argument(
        "--cold", action="store_true",
        help="run with an empty certificate store attached (measures "
             "population overhead)",
    )
    bench_parser.add_argument(
        "--warm", action="store_true",
        help="pre-populate the certificate store, then time warm runs "
             "served from it",
    )
    bench_parser.add_argument(
        "--store", metavar="SPEC", default=None,
        help="store spec for --cold/--warm (default: a temporary sqlite "
             "file per run)",
    )
    serve_parser = subparsers.add_parser(
        "serve",
        help="serve a local certificate store over HTTP for other "
             "processes/machines",
    )
    serve_parser.add_argument(
        "store", help="store spec to serve (a .sqlite path, a directory, "
                      "or ':memory:')",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=7357, help="bind port"
    )
    worker_parser = subparsers.add_parser(
        "worker",
        help="pull and run campaign/census jobs from a 'repro serve' "
             "job queue",
    )
    worker_parser.add_argument(
        "--store", metavar="URL", required=True,
        help="base URL of the 'repro serve' front end to pull from",
    )
    worker_parser.add_argument(
        "--queues", default="campaign,census",
        help="comma-separated queue names to poll (in priority order)",
    )
    worker_parser.add_argument(
        "--id", default=None,
        help="worker identity shown in leases (default: host-pid)",
    )
    worker_parser.add_argument(
        "--once", action="store_true",
        help="exit at the first sweep that finds every queue empty "
             "(instead of polling forever)",
    )
    worker_parser.add_argument(
        "--lease", type=float, default=60.0,
        help="lease seconds requested per job; a worker that dies is "
             "re-leased after this long",
    )
    worker_parser.add_argument(
        "--verbose", action="store_true",
        help="print a line per completed/failed job",
    )
    census_parser = subparsers.add_parser(
        "census",
        help="exact reachable-state census in packed-code space, "
             "optionally sharded over workers",
    )
    census_parser.add_argument(
        "workload", help="census workload name (token_ring, byzantine)"
    )
    census_parser.add_argument(
        "--size", type=int, default=4, help="token_ring: ring size"
    )
    census_parser.add_argument(
        "--k", type=int, default=None,
        help="token_ring: K (default size+... per builder); "
             "byzantine: non-general count (default 3)",
    )
    census_parser.add_argument(
        "--shards", type=int, default=4,
        help="start-code shards (the census is exact for any count)",
    )
    census_parser.add_argument(
        "--distributed", metavar="URL", default=None,
        help="run shards through a 'repro serve' job queue at this URL "
             "(default: compute in-process)",
    )
    census_parser.add_argument(
        "--store", metavar="SPEC", default=None,
        help="store for shard artifacts in in-process mode (re-runs "
             "become cache hits)",
    )
    census_parser.add_argument(
        "--max-states", type=int, default=None,
        help="per-shard exploration cap (default: library cap)",
    )
    census_parser.add_argument(
        "--deadline", type=float, default=None,
        help="abort the distributed census after this many seconds",
    )
    lint_parser = subparsers.add_parser(
        "lint",
        help="statically analyze catalogue programs (no exploration)",
    )
    lint_parser.add_argument("names", nargs="*", help="entries to lint")
    lint_parser.add_argument(
        "--all", action="store_true", help="lint the whole catalogue"
    )
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit JSON diagnostics (alias for --format json)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format; 'sarif' emits SARIF 2.1.0 for "
             "code-scanning uploads",
    )
    lint_parser.add_argument(
        "--store", metavar="SPEC", default=None,
        help="certificate store to read/write lint reports and "
             "per-action symbolic analyses (same SPEC forms as "
             "'verify --store')",
    )
    lint_parser.add_argument(
        "--no-symbolic", action="store_true",
        help="disable the Plan-IR symbolic analyzer (probe-only lint)",
    )
    lint_parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any unsuppressed error-level diagnostic remains",
    )
    lint_parser.add_argument(
        "--verbose", action="store_true",
        help="also print suppressed diagnostics and their justifications",
    )
    lint_parser.add_argument(
        "--suggest-frames", action="store_true",
        help="propose reads/writes declarations for unframed actions",
    )
    lint_parser.add_argument(
        "--probe-limit", type=int, default=4096,
        help="state-space size above which probing falls back to sampling",
    )
    lint_parser.add_argument(
        "--seed", type=int, default=0, help="seed for sampled probe states"
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, entry in CATALOGUE.items():
            description, checks = entry()
            print(f"{name:24s} {description} ({len(checks)} checks)", file=out)
        return 0

    if args.command == "campaign":
        return _campaign(args, out=out)

    if args.command == "monitor":
        return _monitor(args, out=out)

    if args.command == "bench":
        return _bench(args, out=out)

    if args.command == "lint":
        return _lint(args, out=out)

    if args.command == "serve":
        return _serve(args, out=out)

    if args.command == "worker":
        return _worker(args, out=out)

    if args.command == "census":
        return _census(args, out=out)

    names = list(CATALOGUE) if args.all else args.names
    if not names:
        print("nothing to verify; pass entry names or --all", file=out)
        return 2
    if args.store is not None:
        from .store import backend as store_backend

        store_backend.set_active_store(args.store)
    rc = _verify(names, out=out)
    _store_stats_line(out=out)
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
