"""repro — an executable reproduction of *Detectors and Correctors: A
Theory of Fault-Tolerance Components* (Arora & Kulkarni, ICDCS 1998).

The library has six layers:

- :mod:`repro.core` — the paper's formal model: guarded-command programs,
  specifications, faults, tolerance classes, and the detector/corrector
  component specifications, all executable and model-checked.
- :mod:`repro.theory` — the paper's theorems as constructive, mechanically
  verified witness builders.
- :mod:`repro.synthesis` — the companion design methods: transforming a
  fault-intolerant program into fail-safe / nonmasking / masking tolerant
  versions by adding detectors and correctors.
- :mod:`repro.components` — the reusable component framework: comparators,
  watchdogs, acceptance tests, voters, resets, checkpoint/rollback.
- :mod:`repro.programs` — every worked example from the paper (memory
  access, TMR, Byzantine agreement) and the application catalogue (token
  ring, mutual exclusion, leader election, termination detection,
  distributed reset).
- :mod:`repro.sim` — a SIEFAST-style discrete-event simulation
  environment with fault injection, plus :mod:`repro.failure_detectors`
  for the Chandra–Toueg comparison.
"""

from . import core
from .core import *  # noqa: F401,F403 — the core API is the package API

__version__ = "1.0.0"

__all__ = list(core.__all__) + ["__version__"]
