"""Graph artifacts: serialize, reconstruct, and reassemble explored systems.

Two artifact shapes cover the exploration layer:

- a **whole-graph artifact** (``kind="system"``): the BFS-ordered state
  table plus the per-state ``(action, target id)`` adjacency rows — the
  exact ``_labeled_rows`` form every engine produces and
  :class:`~repro.core.regions.SystemIndex` adopts.  Loading one rebuilds
  a :class:`~repro.core.exploration.TransitionSystem` by direct
  construction (``__new__`` + interned states), *never* re-exploring;
  State-level edge tuples stay unmaterialized until a consumer actually
  asks for them (the lazy path shared with the columnar engine).

- **per-action row artifacts** (``kind="actrows"``): the id rows of one
  action over one state table, keyed by (variables, state-table digest,
  action fingerprint) — deliberately *not* by program, so two programs
  differing in a single action share every other action's rows.  When a
  previously certified program is edited, :func:`assemble_system`
  restitches the full graph from row artifacts: unchanged actions hit
  the store, only the edited action's successors are recomputed (a flat
  sweep over the state table — no BFS), and the result is bit-identical
  to a fresh exploration.

Row artifacts exist exactly for *closed* systems (every successor lands
inside the start set), which is also what makes reassembly sound: for a
closed start set the reachable states are the start states themselves in
start order, independent of the action set.  A successor escaping the
table aborts both recording and reassembly, falling back to real
exploration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from . import backend as _backend
from . import keys as _keys

__all__ = [
    "system_key",
    "save_system_artifacts",
    "load_or_assemble_system",
    "action_rows",
    "ROWS_STATE_LIMIT",
]

#: largest state table the row-artifact machinery will sweep; larger
#: systems go through (and are served by) whole-graph artifacts only
ROWS_STATE_LIMIT = 200_000

_EMPTY: Tuple = ()


def system_key(program, starts_digest: str, fault_actions, max_states: int,
               symmetric: bool) -> str:
    return _keys.digest("system", (
        _keys.program_material(program),
        starts_digest,
        _keys.faults_material(fault_actions),
        max_states,
        bool(symmetric),
    ))


def _action_rows_key(vars_material, starts_digest: str, action) -> str:
    return _keys.digest(
        "actrows",
        (vars_material, starts_digest, _keys.action_material(action)),
    )


def _vars_material(program):
    return tuple(
        _keys._variable_material(v) for v in program.variables
    )


# -- whole-graph payloads ------------------------------------------------------

def _labeled_rows_of(ts):
    """(prows, frows, id_of) for any engine's output, deriving them from
    State-level edges when the scalar engine ran."""
    if ts._labeled_rows is not None:
        return ts._labeled_rows
    id_of = {state: i for i, state in enumerate(ts.states)}
    prows = [
        tuple((name, id_of[target]) for name, target in ts.program_edges_from(s))
        for s in ts.states
    ]
    frows = [
        tuple((name, id_of[target]) for name, target in ts.fault_edges_from(s))
        for s in ts.states
    ]
    return prows, frows, id_of


def _encode_system(ts) -> bytes:
    prows, frows, _ = _labeled_rows_of(ts)
    schemas: List[Tuple[str, ...]] = []
    schema_idx: Dict[object, int] = {}
    states_out = []
    for state in ts.states:
        schema = state.schema
        idx = schema_idx.get(schema)
        if idx is None:
            idx = len(schemas)
            schema_idx[schema] = idx
            schemas.append(schema.names)
        states_out.append((idx, state.values_tuple))
    names: List[str] = []
    name_idx: Dict[str, int] = {}

    def encode_rows(rows):
        out = []
        for row in rows:
            encoded = []
            for name, target in row:
                idx = name_idx.get(name)
                if idx is None:
                    idx = len(names)
                    name_idx[name] = idx
                    names.append(name)
                encoded.append((idx, target))
            out.append(tuple(encoded))
        return out

    payload = {
        "v": 1,
        "schemas": schemas,
        "states": states_out,
        "n_starts": len(ts.start_states),
        "names": None,  # filled after encode_rows populates the table
        "prows": encode_rows(prows),
        "frows": encode_rows(frows),
    }
    payload["names"] = names
    return _backend.dumps(payload)


def _blank_system(program, fault_actions, symmetric: bool):
    from ..core.exploration import TransitionSystem

    ts = TransitionSystem.__new__(TransitionSystem)
    ts.program = program
    ts.symmetry = program.symmetry if symmetric else None
    ts.fault_actions = tuple(fault_actions)
    ts.fault_action_names = frozenset(a.name for a in ts.fault_actions)
    ts._program_edges = {}
    ts._fault_edges = {}
    ts._satisfying = {}
    ts._labeled_rows = None
    ts._edge_arrays = None
    ts._edges_lazy = False
    ts._state_cols = None
    return ts


def _decode_system(payload: bytes, program, fault_actions, symmetric: bool):
    from ..core.state import Schema, _state_of

    data = _backend.loads(payload)
    if data.get("v") != 1:
        return None
    schemas = [Schema.of(names) for names in data["schemas"]]
    states = [
        _state_of(schemas[idx], values) for idx, values in data["states"]
    ]
    names = data["names"]
    prows = [
        tuple((names[ni], target) for ni, target in row)
        for row in data["prows"]
    ]
    frows = [
        tuple((names[ni], target) for ni, target in row)
        for row in data["frows"]
    ]
    ts = _blank_system(program, fault_actions, symmetric)
    ts.start_states = tuple(states[: data["n_starts"]])
    program_edges = ts._program_edges
    for state in states:
        program_edges[state] = _EMPTY
    ts._labeled_rows = (prows, frows, {s: i for i, s in enumerate(states)})
    ts._edges_lazy = True
    return ts


# -- per-action rows -----------------------------------------------------------

def _compute_action_rows(action, states: Sequence, id_of: Dict
                         ) -> Optional[List[Tuple[int, ...]]]:
    """Id rows of one action over a closed state table, or ``None`` the
    moment any successor escapes it."""
    rows: List[Tuple[int, ...]] = []
    successors = action.successors
    lookup = id_of.get
    for state in states:
        targets = successors(state)
        ids = []
        for target in targets:
            j = lookup(target)
            if j is None:
                return None
            ids.append(j)
        if len(ids) > 1:
            # nondeterministic statements may offer a successor twice;
            # mirror the engines' per-action dedup exactly
            ids = list(dict.fromkeys(ids))
        rows.append(tuple(ids))
    return rows


def action_rows(store, program, states: Sequence, starts_digest: str, action,
                ) -> Optional[List[Tuple[int, ...]]]:
    """Get-or-compute the id rows of ``action`` over ``states``.

    A stored artifact doubles as a *closure certificate*: it exists only
    if every successor of every table state lands back in the table.
    Returns ``None`` when the action escapes (and records nothing).
    """
    key = _action_rows_key(_vars_material(program), starts_digest, action)
    payload = store.get(key)
    if payload is not None:
        data = _backend.loads(payload)
        _backend.record_event("rows_hits")
        return data["rows"]
    id_of = {state: i for i, state in enumerate(states)}
    rows = _compute_action_rows(action, states, id_of)
    _backend.record_event("rows_computed")
    if rows is None:
        return None
    store.put(key, _backend.dumps({"v": 1, "rows": rows}), kind="actrows")
    return rows


def _record_action_rows(store, ts) -> None:
    """Slice a freshly explored *closed* system into per-action row
    artifacts so later edited variants reassemble instead of exploring."""
    if ts.symmetry is not None:
        return
    states = list(ts.states)
    if len(states) != len(ts.start_states) or len(states) > ROWS_STATE_LIMIT:
        return
    prows, frows, _ = _labeled_rows_of(ts)
    starts_digest = _keys.states_digest(states)
    vars_material = _vars_material(ts.program)
    for actions, rows_table in (
        (ts.program.actions, prows),
        (ts.fault_actions, frows),
    ):
        for action in actions:
            name = action.name
            key = _action_rows_key(vars_material, starts_digest, action)
            rows = [
                tuple(t for n, t in row if n == name) for row in rows_table
            ]
            store.put(
                key, _backend.dumps({"v": 1, "rows": rows}), kind="actrows"
            )


def assemble_system(store, program, starts, fault_actions, symmetric: bool):
    """Rebuild the graph of ``program [] faults`` from per-action row
    artifacts over the start table, computing only the rows the store
    does not hold.  Returns ``None`` whenever the preconditions of the
    closed-system argument do not hold — or when the store holds *no*
    rows for this table at all (a fully cold exploration belongs to the
    batch engines, which then record the rows as a byproduct; sweeping
    every action interpretedly here would be strictly slower)."""
    if symmetric or not starts or len(starts) > ROWS_STATE_LIMIT:
        return None
    fault_names = {a.name for a in fault_actions}
    if fault_names & {a.name for a in program.actions}:
        return None  # the constructor raises on this; let it
    states = list(starts)
    starts_digest = _keys.states_digest(states)
    vars_material = _vars_material(program)
    all_actions = list(program.actions) + list(fault_actions)
    stored: Dict[str, Optional[List[Tuple[int, ...]]]] = {}
    for action in all_actions:
        key = _action_rows_key(vars_material, starts_digest, action)
        payload = store.get(key)
        if payload is not None:
            stored[action.name] = _backend.loads(payload)["rows"]
            _backend.record_event("rows_hits")
        else:
            stored[action.name] = None
    if not any(rows is not None for rows in stored.values()):
        return None
    rows_of: Dict[str, List[Tuple[int, ...]]] = {}
    id_of = {state: i for i, state in enumerate(states)}
    for action in all_actions:
        rows = stored[action.name]
        if rows is None:
            rows = _compute_action_rows(action, states, id_of)
            _backend.record_event("rows_computed")
            if rows is None:
                return None
            key = _action_rows_key(vars_material, starts_digest, action)
            store.put(key, _backend.dumps({"v": 1, "rows": rows}),
                      kind="actrows")
        rows_of[action.name] = rows
    program_rows = [(a.name, rows_of[a.name]) for a in program.actions]
    fault_rows = [(a.name, rows_of[a.name]) for a in fault_actions]

    prows: List[Tuple] = []
    frows: List[Tuple] = []
    for i in range(len(states)):
        prow: List[Tuple[str, int]] = []
        for name, rows in program_rows:
            prow.extend((name, t) for t in rows[i])
        prows.append(tuple(prow))
        frow: List[Tuple[str, int]] = []
        for name, rows in fault_rows:
            frow.extend((name, t) for t in rows[i])
        frows.append(tuple(frow))

    ts = _blank_system(program, fault_actions, symmetric)
    ts.start_states = tuple(states)
    program_edges = ts._program_edges
    for state in states:
        program_edges[state] = _EMPTY
    ts._labeled_rows = (prows, frows, {s: i for i, s in enumerate(states)})
    ts._edges_lazy = True
    _backend.record_event("graph_reassembled")
    return ts


# -- exploration-facing entry points ------------------------------------------

def load_or_assemble_system(program, starts, fault_actions, max_states: int,
                            symmetric: bool):
    """Serve a previously explored graph: whole-graph artifact first,
    per-action reassembly second.  ``None`` means explore for real."""
    store = _backend.active_store()
    if store is None:
        return None
    starts_digest = _keys.states_digest(starts)
    key = system_key(program, starts_digest, fault_actions, max_states,
                     symmetric)
    payload = store.get(key)
    if payload is not None:
        ts = _decode_system(payload, program, fault_actions, symmetric)
        if ts is not None:
            _backend.record_event("graph_hits")
            return ts
    ts = assemble_system(store, program, starts, fault_actions, symmetric)
    if ts is not None:
        # persist the stitched graph under its own key so the next
        # process loads it in one round trip
        store.put(key, _encode_system(ts), kind="system")
    return ts


def save_system_artifacts(ts, starts, max_states: int, symmetric: bool) -> None:
    """Record a freshly explored system: the whole-graph artifact plus,
    for closed systems, the per-action row artifacts."""
    store = _backend.active_store()
    if store is None:
        return
    starts_digest = _keys.states_digest(starts)
    key = system_key(ts.program, starts_digest, ts.fault_actions, max_states,
                     symmetric)
    store.put(key, _encode_system(ts), kind="system")
    _record_action_rows(store, ts)
