"""``repro serve`` — an asyncio HTTP front end over a local store.

Protocol (deliberately tiny; :class:`~repro.store.backend.RemoteStore`
is the only intended client, but any HTTP client works):

- ``GET /a/<key>`` — ``200`` with the artifact bytes, or ``404``;
- ``PUT /a/<key>`` — store the request body, reply ``204``;
- ``GET /stats`` — JSON counters of the backing store.

The server is a plain :func:`asyncio.start_server` loop — no external
web framework — parsing just enough HTTP/1.1 to move opaque artifact
blobs.  Connections are handled concurrently; the backing store's own
locking makes the handlers safe.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from .backend import BaseStore, store_from_spec

__all__ = ["StoreServer", "serve"]

_MAX_HEADER = 64 * 1024
_MAX_BODY = 512 * 1024 * 1024


def _response(status: str, body: bytes = b"",
              content_type: str = "application/octet-stream") -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class StoreServer:
    """Serve a local store over HTTP until cancelled."""

    def __init__(self, store: BaseStore, host: str = "127.0.0.1",
                 port: int = 7357):
        self.store = store
        self.host = host
        self.port = port
        self.requests = 0
        self._server: Optional[asyncio.base_events.Server] = None

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError):
            return None
        if len(head) > _MAX_HEADER:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_BODY:
            return None
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
        return method, target, body

    def _handle(self, method: str, target: str, body: bytes) -> bytes:
        self.requests += 1
        if target == "/stats" and method == "GET":
            payload = json.dumps(
                {**self.store.counters(), "requests": self.requests}
            ).encode("utf-8")
            return _response("200 OK", payload, "application/json")
        if not target.startswith("/a/"):
            return _response("404 Not Found")
        key = target[3:]
        if not key or "/" in key or len(key) > 256:
            return _response("400 Bad Request")
        if method == "GET":
            payload = self.store.get(key)
            if payload is None:
                return _response("404 Not Found")
            return _response("200 OK", payload)
        if method == "PUT":
            self.store.put(key, body)
            return _response("204 No Content")
        return _response("405 Method Not Allowed")

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                writer.write(self._handle(*request))
                await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port, limit=_MAX_HEADER
        )
        addr = self._server.sockets[0].getsockname()
        self.port = addr[1]

    async def run_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def serve(spec: str, host: str = "127.0.0.1", port: int = 7357,
          announce=print) -> None:
    """Blocking entry point used by ``repro serve``."""
    store = store_from_spec(spec)
    server = StoreServer(store, host, port)

    async def main() -> None:
        await server.start()
        announce(
            f"repro store server on http://{server.host}:{server.port} "
            f"backed by {store!r}"
        )
        await server.run_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        announce("repro store server stopped")
