"""``repro serve`` — an asyncio HTTP front end over a local store.

Protocol (deliberately tiny; :class:`~repro.store.backend.RemoteStore`
and :class:`~repro.store.jobs.JobClient` are the only intended
clients, but any HTTP client works):

- ``GET /a/<key>`` — ``200`` with the artifact bytes, or ``404``;
- ``PUT /a/<key>`` — store the request body, reply ``204``;
- ``GET /stats`` — JSON counters of the backing store, plus per-queue
  depth/lease/miss counters for every job queue;
- ``GET /healthz`` — liveness probe (``200`` with uptime-ish JSON) so
  smoke jobs and operators can poll readiness instead of sleeping;
- ``POST /jobs/<queue>/submit|lease|complete|fail`` and
  ``GET /jobs/<queue>/job/<id>`` — the work-queue protocol of
  :mod:`repro.store.jobs` (JSON bodies; an empty lease answers
  ``204``).

The server is a plain :func:`asyncio.start_server` loop — no external
web framework — parsing just enough HTTP/1.1 to move opaque artifact
blobs and small JSON job envelopes.  Connections are handled
concurrently; the backing store's own locking and the job board's
single lock make the handlers safe.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from .backend import BaseStore, store_from_spec
from .jobs import JobBoard

__all__ = ["StoreServer", "serve"]

_MAX_HEADER = 64 * 1024
_MAX_BODY = 512 * 1024 * 1024

#: cap on how long one lease request may long-poll, whatever the client
#: asked for (bounded parked connections, and clients keep their socket
#: timeouts comfortably above the wait)
_MAX_LEASE_WAIT = 30.0

#: how often a parked lease request re-checks the queue
_LEASE_POLL_S = 0.01


def _response(status: str, body: bytes = b"",
              content_type: str = "application/octet-stream") -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _json_response(payload: object, status: str = "200 OK") -> bytes:
    return _response(
        status, json.dumps(payload).encode("utf-8"), "application/json"
    )


class StoreServer:
    """Serve a local store (and a job board) over HTTP until cancelled."""

    def __init__(self, store: BaseStore, host: str = "127.0.0.1",
                 port: int = 7357, board: Optional[JobBoard] = None):
        self.store = store
        self.host = host
        self.port = port
        self.board = board if board is not None else JobBoard()
        self.requests = 0
        self._server: Optional[asyncio.base_events.Server] = None

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError):
            return None
        if len(head) > _MAX_HEADER:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_BODY:
            return None
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError):
                return None
        return method, target, body

    async def _handle(self, method: str, target: str, body: bytes) -> bytes:
        self.requests += 1
        if target == "/healthz" and method == "GET":
            return _json_response(
                {"status": "ok", "requests": self.requests}
            )
        if target == "/stats" and method == "GET":
            return _json_response({
                **self.store.counters(),
                "requests": self.requests,
                "queues": self.board.status(),
            })
        if target.startswith("/jobs/"):
            return await self._handle_jobs(method, target, body)
        if not target.startswith("/a/"):
            return _response("404 Not Found")
        key = target[3:]
        if not key or "/" in key or len(key) > 256:
            return _response("400 Bad Request")
        if method == "GET":
            payload = self.store.get(key)
            if payload is None:
                return _response("404 Not Found")
            return _response("200 OK", payload)
        if method == "PUT":
            self.store.put(key, body)
            return _response("204 No Content")
        return _response("405 Method Not Allowed")

    async def _handle_jobs(
        self, method: str, target: str, body: bytes
    ) -> bytes:
        parts = [p for p in target[len("/jobs/"):].split("/")]
        if len(parts) < 2 or not parts[0] or not parts[1]:
            return _response("404 Not Found")
        queue, verb = parts[0], parts[1]
        if verb == "job":
            if method != "GET" or len(parts) != 3 or not parts[2]:
                return _response("404 Not Found")
            job = self.board.job(queue, parts[2])
            if job is None:
                return _response("404 Not Found")
            return _json_response(job)
        if len(parts) != 2:
            return _response("404 Not Found")
        if method != "POST":
            return _response("405 Method Not Allowed")
        try:
            data = json.loads(body) if body else {}
            if not isinstance(data, dict):
                raise ValueError
        except ValueError:
            return _response("400 Bad Request")
        if verb == "submit":
            job_id = data.get("id")
            if not job_id:
                return _response("400 Bad Request")
            return _json_response(self.board.submit(
                queue, data.get("payload") or {}, job_id,
                data.get("result_key"),
            ))
        if verb == "lease":
            worker = data.get("worker") or "anonymous"
            lease_s = float(data.get("lease_s") or 30.0)
            job = self.board.lease(queue, worker, lease_s)
            wait_s = min(
                float(data.get("wait_s") or 0.0), _MAX_LEASE_WAIT
            )
            if job is None and wait_s > 0:
                # long poll: park the request until something becomes
                # leasable (peek is a hint — another worker can win the
                # race, in which case we just keep waiting)
                deadline = asyncio.get_running_loop().time() + wait_s
                while (
                    job is None
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(_LEASE_POLL_S)
                    if self.board.peek(queue):
                        job = self.board.lease(queue, worker, lease_s)
            if job is None:
                return _response("204 No Content")
            return _json_response(job)
        if verb == "complete":
            job_id = data.get("id")
            if not job_id:
                return _response("400 Bad Request")
            return _json_response(self.board.complete(
                queue, job_id, data.get("worker"), data.get("result_key")
            ))
        if verb == "fail":
            job_id = data.get("id")
            if not job_id:
                return _response("400 Bad Request")
            return _json_response(self.board.fail(
                queue, job_id, data.get("worker"), data.get("error")
            ))
        return _response("404 Not Found")

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                writer.write(await self._handle(*request))
                await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port, limit=_MAX_HEADER
        )
        addr = self._server.sockets[0].getsockname()
        self.port = addr[1]

    async def run_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def stats_line(self) -> str:
        """One line of store + per-queue counters (depth/leased/done and
        lease misses), printed by ``repro serve`` on shutdown."""
        counters = self.store.counters()
        bits = [
            f"store: {counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['puts']} puts, {self.requests} requests"
        ]
        for name, q in sorted(self.board.status().items()):
            bits.append(
                f"{name}: depth {q['depth']}, leased {q['leased']}, "
                f"done {q['done']}, misses {q['lease_misses']}, "
                f"expired {q['expired']}, workers {q['workers']}"
            )
        return "; ".join(bits)


def serve(spec: str, host: str = "127.0.0.1", port: int = 7357,
          announce=print) -> None:
    """Blocking entry point used by ``repro serve``."""
    store = store_from_spec(spec)
    server = StoreServer(store, host, port)

    async def main() -> None:
        await server.start()
        announce(
            f"repro store server on http://{server.host}:{server.port} "
            f"backed by {store!r}"
        )
        await server.run_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        announce("repro store server stopped")
        announce(server.stats_line())
