"""Storage backends and the active-store runtime.

Three interchangeable backends hold content-addressed artifacts
(``key -> bytes``):

- :class:`SQLiteStore` — a single-file sqlite database in WAL mode, the
  default for local cross-process sharing (campaign workers, repeated
  CLI runs, CI jobs on the same runner);
- :class:`FileStore` — one file per artifact under a fan-out directory,
  for network filesystems where sqlite locking is unreliable;
- :class:`RemoteStore` — a thin HTTP client against ``repro serve``
  (:mod:`repro.store.serve`), for fleet-wide sharing.

One store is *active* per process (:func:`active_store`); it is either
set explicitly (:func:`set_active_store`, the CLI ``--store`` flag) or
picked up from the ``REPRO_STORE`` environment variable on first use.
Every consumer treats the store as a cache: a ``None`` active store or
any backend error degrades to computing from scratch, never to a wrong
answer.

Handles are *resettable*: :func:`reset_handles` closes open connections
(and runs registered reset hooks) without deactivating the store, so
``clear_all_caches()`` can return the process to a cache-cold state
while warm persistent artifacts stay on disk — exactly what the
``--warm`` benchmark mode measures.
"""

from __future__ import annotations

import os
import pickle
import random
import sqlite3
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "BaseStore",
    "SQLiteStore",
    "FileStore",
    "MemoryStore",
    "RemoteStore",
    "with_retries",
    "store_from_spec",
    "active_store",
    "set_active_store",
    "reset_handles",
    "register_reset_hook",
    "record_event",
    "stats",
    "reset_stats",
    "dumps",
    "loads",
]

_PICKLE_PROTOCOL = 4

#: transport-level failures worth retrying.  ``HTTPError`` subclasses
#: ``URLError`` but carries a definitive server answer (404, 400, ...)
#: — :func:`with_retries` always re-raises it immediately.
RETRYABLE_ERRORS = (urllib.error.URLError, OSError, TimeoutError)


def with_retries(fn: Callable[[], Any], retries: int = 3,
                 backoff: float = 0.1,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None) -> Any:
    """Call ``fn``, retrying transport errors with exponential backoff
    and full jitter (delay uniformly drawn from ``[0, backoff * 2^n]``,
    so a fleet of workers hammering a briefly-down server decorrelates
    instead of stampeding).  HTTP *status* errors are definitive server
    answers, not transport failures, and re-raise immediately; after
    ``retries`` failed retries the last transport error propagates.
    ``sleep``/``rng`` are injectable so tests need no wall-clock time.
    """
    uniform = rng.uniform if rng is not None else random.uniform
    attempt = 0
    while True:
        try:
            return fn()
        except urllib.error.HTTPError:
            raise
        except RETRYABLE_ERRORS:
            if attempt >= retries:
                raise
            sleep(uniform(0.0, backoff * (2 ** attempt)))
            attempt += 1


def dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)


def loads(payload: bytes) -> Any:
    return pickle.loads(payload)


class BaseStore:
    """Common counter bookkeeping; subclasses implement ``_get``/``_put``."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0

    def get(self, key: str) -> Optional[bytes]:
        try:
            payload = self._get(key)
        except Exception:
            self.errors += 1
            return None
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def put(self, key: str, payload: bytes, kind: str = "") -> None:
        try:
            self._put(key, payload, kind)
        except Exception:
            self.errors += 1
            return
        self.puts += 1

    def _get(self, key: str) -> Optional[bytes]:  # pragma: no cover
        raise NotImplementedError

    def _put(self, key: str, payload: bytes, kind: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any open OS handles; the next access reopens them."""

    def close(self) -> None:
        self.reset()

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
        }


class SQLiteStore(BaseStore):
    """Artifacts in one sqlite file (WAL mode, safe for concurrent
    processes on a local filesystem)."""

    def __init__(self, path: Union[str, os.PathLike]):
        super().__init__()
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None

    def _connection(self) -> sqlite3.Connection:
        conn = self._conn
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                " key TEXT PRIMARY KEY,"
                " kind TEXT NOT NULL DEFAULT '',"
                " payload BLOB NOT NULL)"
            )
            conn.commit()
            self._conn = conn
        return conn

    def _get(self, key: str) -> Optional[bytes]:
        with self._lock:
            row = self._connection().execute(
                "SELECT payload FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else bytes(row[0])

    def _put(self, key: str, payload: bytes, kind: str) -> None:
        with self._lock:
            conn = self._connection()
            conn.execute(
                "INSERT OR REPLACE INTO artifacts (key, kind, payload) "
                "VALUES (?, ?, ?)",
                (key, kind, payload),
            )
            conn.commit()

    def reset(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                finally:
                    self._conn = None

    @property
    def is_open(self) -> bool:
        return self._conn is not None

    def __repr__(self) -> str:
        return f"SQLiteStore({self.path!r})"


class FileStore(BaseStore):
    """One file per artifact under ``root/<key[:2]>/<key>`` with atomic
    (write-then-rename) puts."""

    def __init__(self, root: Union[str, os.PathLike]):
        super().__init__()
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key)

    def _get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def _put(self, key: str, payload: bytes, kind: str) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        return f"FileStore({self.root!r})"


class MemoryStore(BaseStore):
    """In-process dict store — tests and ephemeral warm runs."""

    def __init__(self) -> None:
        super().__init__()
        self._data: Dict[str, bytes] = {}

    def _get(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def _put(self, key: str, payload: bytes, kind: str) -> None:
        self._data[key] = payload

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"MemoryStore({len(self._data)} artifacts)"


class RemoteStore(BaseStore):
    """HTTP client for a ``repro serve`` front end.

    Transient transport errors (dropped connection, refused socket,
    timeout) retry in place with exponential backoff + jitter before
    being counted as a failure, so a server restart mid-campaign is a
    hiccup, not a miss storm.  Network failures that survive the
    retries degrade to cache misses; after ``max_failures`` consecutive
    ones the store goes dormant (every call is a miss) instead of
    stalling verification on a dead server.  ``timeout`` bounds each
    individual attempt — connect and read — so a black-holed server
    cannot hang a campaign.
    """

    def __init__(self, base_url: str, timeout: float = 5.0,
                 max_failures: int = 3, retries: int = 2,
                 backoff: float = 0.1):
        super().__init__()
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_failures = max_failures
        self.retries = retries
        self.backoff = backoff
        self._failures = 0

    def _url(self, key: str) -> str:
        return f"{self.base_url}/a/{key}"

    @property
    def dormant(self) -> bool:
        return self._failures >= self.max_failures

    def _get(self, key: str) -> Optional[bytes]:
        if self.dormant:
            return None

        def attempt() -> bytes:
            with urllib.request.urlopen(
                self._url(key), timeout=self.timeout
            ) as response:
                return response.read()

        try:
            payload = with_retries(
                attempt, retries=self.retries, backoff=self.backoff
            )
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                self._failures = 0
                return None
            self._failures += 1
            return None
        except RETRYABLE_ERRORS:
            self._failures += 1
            return None
        self._failures = 0
        return payload

    def _put(self, key: str, payload: bytes, kind: str) -> None:
        if self.dormant:
            return
        request = urllib.request.Request(
            self._url(key), data=payload, method="PUT",
            headers={"Content-Type": "application/octet-stream",
                     "X-Repro-Kind": kind},
        )

        def attempt() -> None:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass

        try:
            with_retries(attempt, retries=self.retries, backoff=self.backoff)
        except urllib.error.HTTPError:
            self._failures += 1
            return
        except RETRYABLE_ERRORS:
            self._failures += 1
            return
        self._failures = 0

    def __repr__(self) -> str:
        return f"RemoteStore({self.base_url!r})"


def store_from_spec(spec: Union[str, os.PathLike, BaseStore]) -> BaseStore:
    """Resolve a user-facing store spec: an http(s) URL, a ``.sqlite`` /
    ``.db`` path, ``:memory:``, or a directory (file store)."""
    if isinstance(spec, BaseStore):
        return spec
    text = os.fspath(spec)
    if text.startswith("http://") or text.startswith("https://"):
        return RemoteStore(text)
    if text == ":memory:":
        return MemoryStore()
    if text.endswith((".sqlite", ".sqlite3", ".db")):
        return SQLiteStore(text)
    return FileStore(text)


# -- active store runtime ------------------------------------------------------

_ACTIVE: Optional[BaseStore] = None
_ENV_RESOLVED = False
_RESET_HOOKS: List[Callable[[], None]] = []

#: high-level event counters maintained by the store consumers (graph
#: loads, reassemblies, verdict replays, ...), merged into :func:`stats`
EVENTS: Dict[str, int] = {}


def record_event(name: str, count: int = 1) -> None:
    EVENTS[name] = EVENTS.get(name, 0) + count


def active_store() -> Optional[BaseStore]:
    """The process-wide store, resolving ``REPRO_STORE`` on first call."""
    global _ACTIVE, _ENV_RESOLVED
    if _ACTIVE is None and not _ENV_RESOLVED:
        _ENV_RESOLVED = True
        spec = os.environ.get("REPRO_STORE")
        if spec:
            _ACTIVE = store_from_spec(spec)
    return _ACTIVE


def active_spec() -> Optional[str]:
    """A spec string that reconstructs the active store in another
    process, or ``None`` when no store is active or it is inherently
    process-local (:class:`MemoryStore`).  Campaign worker pools use
    this to share the parent's certificate store."""
    store = active_store()
    if isinstance(store, SQLiteStore):
        return store.path
    if isinstance(store, FileStore):
        return store.root
    if isinstance(store, RemoteStore):
        return store.base_url
    return None


def set_active_store(
    spec: Optional[Union[str, os.PathLike, BaseStore]]
) -> Optional[BaseStore]:
    """Install (or with ``None`` deactivate) the process-wide store.

    Returns the installed store.  The previous store's handles are
    closed; explicit installation also stops further ``REPRO_STORE``
    resolution for this process.
    """
    global _ACTIVE, _ENV_RESOLVED
    previous = _ACTIVE
    _ENV_RESOLVED = True
    _ACTIVE = None if spec is None else store_from_spec(spec)
    if previous is not None and previous is not _ACTIVE:
        previous.close()
    reset_handles()
    return _ACTIVE


def register_reset_hook(hook: Callable[[], None]) -> None:
    """Run ``hook`` whenever handles are reset (used by in-process memos
    layered over the store, e.g. predicate read-frame caches)."""
    _RESET_HOOKS.append(hook)


def reset_handles() -> None:
    """Close the active store's OS handles and drain in-process memos
    layered on top of it.  The store stays active — persistent artifacts
    survive, which is the whole point of ``--warm`` benchmarking."""
    store = _ACTIVE
    if store is not None:
        store.reset()
    for hook in _RESET_HOOKS:
        hook()


def stats() -> Dict[str, int]:
    """Counters of the active store merged with high-level events."""
    merged: Dict[str, int] = dict(EVENTS)
    store = _ACTIVE
    if store is not None:
        merged.update(store.counters())
    else:
        merged.update(hits=0, misses=0, puts=0, errors=0)
    return merged


def reset_stats() -> None:
    EVENTS.clear()
    store = _ACTIVE
    if store is not None:
        store.hits = store.misses = store.puts = store.errors = 0
