"""Verdict caching and frame-aware incremental re-verification.

Three layers, each consulted by :mod:`repro.core.tolerance` and
:mod:`repro.core.refinement` when a store is active:

1. **Certificate replay** — whole tolerance/refinement verdicts keyed by
   the full content fingerprint (program + faults + spec + invariant +
   span + symmetry).  A warm ``repro verify`` of an unchanged catalogue
   is served entirely from here: the stored
   :class:`~repro.core.results.CheckResult` is bit-identical to a fresh
   one by round-trip of the frozen dataclasses.

2. **Per-action closure facts** — ``T closed in p [] F`` decomposes
   exactly into per-action obligations because the fault-span system
   starts from *every* full-space state satisfying the span: the states
   of the system satisfying ``T`` are exactly the full-space ``T``
   states, so "action ``a`` preserves ``T``" depends only on (variables,
   ``T``, ``a``).  The certificate is the per-action row artifact of
   :mod:`repro.store.artifacts` — it exists iff every successor stays in
   the table.  Editing one action leaves every other action's closure
   fact valid by key equality; only the edited action sweeps.

3. **Frame-based obligation reuse** — whole-graph obligations
   (convergence ``true ↝ S``, safety sweeps, liveness components,
   refinement) cannot be decomposed per action, but a *passing* verdict
   transfers across a single-action edit when the edit is invisible to
   everything else: writes(old ∪ new) disjoint from the exact read
   frames of every consulted predicate and from the frames of every
   other action (program and fault alike).  Under that condition the
   edited action only touches variables no predicate and no other action
   observes, so its steps neither create/destroy progress toward any
   consulted predicate nor change any other action's behaviour — a
   violating computation of either program maps to one of the other by
   inserting/deleting the edited action's steps.  Stutter-sensitivity is
   the one trap: a transition invariant that can reject a visible-stutter
   step (``({S},{R})`` pairs) vetoes reuse; components built by the
   library's factories carry a ``stutter_true`` marker saying whether a
   visibly-stuttering step can ever violate them.  Failing verdicts never
   transfer (the stored counterexample belongs to the old program), and
   any missing frame declaration or non-exhaustible state space refuses
   reuse — degrade to recomputing, never to guessing.

The *manifest* makes layer 3 findable: per obligation family (everything
but the per-action fingerprints) it remembers recent
``{action name -> (fingerprint, frames)}`` tables with their verdict
keys, so an edited program can locate its one-action-away predecessor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import artifacts as _artifacts
from . import backend as _backend
from . import keys as _keys

__all__ = [
    "certificate_key",
    "lookup_certificate",
    "record_certificate",
    "cached_obligation",
    "ObligationFamily",
    "closure_via_rows",
    "predicate_reads",
    "clear_memos",
]

#: manifest entries kept per obligation family (most recent first)
_MANIFEST_LIMIT = 8

#: in-process memo of exact predicate read frames, keyed by content key
_READS_MEMO: Dict[str, Optional[frozenset]] = {}


def clear_memos() -> None:
    _READS_MEMO.clear()


_backend.register_reset_hook(clear_memos)


# -- layer 1: whole-certificate replay ----------------------------------------

def certificate_key(tag: str, program, faults, spec, invariant, span,
                    symmetric: bool) -> str:
    return _keys.digest("cert", (
        tag,
        _keys.program_material(program),
        _keys.faults_material(faults) if faults is not None else None,
        _keys.spec_material(spec) if spec is not None else None,
        _keys.predicate_material(invariant) if invariant is not None else None,
        _keys.predicate_material(span) if span is not None else None,
        bool(symmetric),
    ))


def lookup_certificate(key: str):
    store = _backend.active_store()
    if store is None:
        return None
    payload = store.get(key)
    if payload is None:
        return None
    try:
        result = _backend.loads(payload)
    except Exception:
        return None
    _backend.record_event("verdict_hits")
    return result


def record_certificate(key: str, result) -> None:
    store = _backend.active_store()
    if store is None:
        return
    store.put(key, _backend.dumps(result), kind="cert")


# -- layer 2: per-action closure via row artifacts ----------------------------

def closure_via_rows(program, actions, start_predicate, what: str):
    """Serve a closure obligation from per-action row artifacts.

    ``actions`` is the full action list whose closure over the states
    satisfying ``start_predicate`` is claimed (program actions, plus
    fault actions for span closure).  Returns the passing
    :class:`CheckResult` when every action's rows exist or compute
    cleanly, ``None`` to fall back to the real graph check (store
    inactive, space too large, or some action escapes — the fallback
    reproduces the exact counterexample).
    """
    store = _backend.active_store()
    if store is None:
        return None
    try:
        states = program.states_satisfying(start_predicate)
    except Exception:
        return None
    if not states or len(states) > _artifacts.ROWS_STATE_LIMIT:
        return None
    starts_digest = _keys.states_digest(states)
    for action in actions:
        rows = _artifacts.action_rows(
            store, program, states, starts_digest, action
        )
        if rows is None:
            return None
    from ..core.results import CheckResult

    _backend.record_event("closure_facts_served")
    return CheckResult.passed(what)


# -- layer 3: frame-based reuse across one-action edits ------------------------

def predicate_reads(program, predicate) -> Optional[frozenset]:
    """Exact read frame of ``predicate`` over the program's full space,
    memoized in-process and in the store; ``None`` refuses."""
    key = _keys.digest("predreads", (
        tuple(_keys._variable_material(v) for v in program.variables),
        _keys.predicate_material(predicate),
    ))
    if key in _READS_MEMO:
        return _READS_MEMO[key]
    store = _backend.active_store()
    if store is not None:
        payload = store.get(key)
        if payload is not None:
            reads = _backend.loads(payload)
            reads = None if reads is None else frozenset(reads)
            _READS_MEMO[key] = reads
            return reads
    from ..analysis.frames import exact_predicate_reads

    try:
        states = program.states()
    except Exception:
        states = None
    reads = None
    if states:
        # exactness needs the full Cartesian space; program.states() is
        # exactly that (state_space over the declared domains)
        reads = exact_predicate_reads(predicate, states)
    _READS_MEMO[key] = reads
    if store is not None:
        store.put(
            key,
            _backend.dumps(None if reads is None else sorted(reads)),
            kind="predreads",
        )
    return reads


def _component_predicates(spec) -> Optional[List]:
    """The predicates a spec consults, or ``None`` if any component is
    opaque or stutter-sensitive (vetoing frame reuse)."""
    out: List = []
    for component in spec.components:
        kind = type(component).__name__
        if kind == "StateInvariant":
            out.append(component.predicate)
        elif kind == "LeadsTo":
            out.append(component.source)
            out.append(component.target)
        elif kind == "TransitionInvariant":
            consulted = getattr(component, "predicates", None)
            if consulted is None or not getattr(
                component, "stutter_true", False
            ):
                return None
            out.extend(consulted)
        else:
            return None
    return out


class ObligationFamily:
    """Everything an obligation depends on, split into the family part
    (stable across single-action edits) and the per-action part."""

    def __init__(self, tag: str, program, faults, predicates,
                 spec=None, extra=None):
        self.tag = tag
        self.program = program
        self.faults = tuple(getattr(faults, "actions", faults or ()))
        self.predicates: Optional[List] = list(predicates)
        if spec is not None and self.predicates is not None:
            consulted = _component_predicates(spec)
            if consulted is None:
                self.predicates = None  # opaque component: no frame reuse
            else:
                self.predicates.extend(consulted)
        self.extra = extra
        self.spec = spec

    def family_key(self) -> str:
        return _keys.digest("family", (
            self.tag,
            self.program.name,
            tuple(_keys._variable_material(v) for v in self.program.variables),
            _keys.faults_material(self.faults),
            _keys.spec_material(self.spec) if self.spec is not None else None,
            tuple(
                _keys.predicate_material(p) for p in (self.predicates or ())
            ) if self.predicates is not None else None,
            self.extra,
        ))

    def action_table(self) -> Optional[Dict[str, Tuple[str, Optional[list],
                                                       Optional[list]]]]:
        table: Dict[str, Tuple[str, Optional[list], Optional[list]]] = {}
        for action in self.program.actions:
            if action.name in table:
                return None
            fp = _keys.digest("action", _keys.action_material(action))
            reads = None if action.reads is None else sorted(action.reads)
            writes = None if action.writes is None else sorted(action.writes)
            table[action.name] = (fp, reads, writes)
        return table

    def _fault_frames_declared(self) -> bool:
        return all(
            a.reads is not None and a.writes is not None for a in self.faults
        )

    def try_reuse(self, store, table) -> Optional[object]:
        """Find a one-action-away passing predecessor and transfer its
        verdict if the edit is frame-invisible.  ``None`` refuses."""
        if self.predicates is None or not self._fault_frames_declared():
            return None
        payload = store.get(self.family_key())
        if payload is None:
            return None
        try:
            entries = _backend.loads(payload)
        except Exception:
            return None
        names = set(table)
        for entry in entries:
            if not entry.get("ok"):
                continue
            old = entry.get("actions")
            if old is None or set(old) != names:
                continue
            diff = [n for n in names if old[n][0] != table[n][0]]
            if len(diff) != 1:
                continue
            edited = diff[0]
            old_fp, old_reads, old_writes = old[edited]
            new_fp, new_reads, new_writes = table[edited]
            if old_writes is None or new_writes is None:
                continue
            touched = set(old_writes) | set(new_writes)
            # every other action (and every fault action) must neither
            # read nor write the touched variables
            visible = set()
            for name in names:
                if name == edited:
                    continue
                _, reads, writes = table[name]
                if reads is None or writes is None:
                    visible = None
                    break
                visible.update(reads)
                visible.update(writes)
            if visible is None:
                continue
            for fault in self.faults:
                visible.update(fault.reads)
                visible.update(fault.writes)
            if touched & visible:
                continue
            # no consulted predicate may read the touched variables
            refused = False
            for predicate in self.predicates:
                reads = predicate_reads(self.program, predicate)
                if reads is None:
                    refused = True
                    break
                if touched & reads:
                    refused = True
                    break
            if refused:
                continue
            verdict_payload = store.get(entry["verdict"])
            if verdict_payload is None:
                continue
            try:
                verdict = _backend.loads(verdict_payload)
            except Exception:
                continue
            if not getattr(verdict, "ok", False):
                continue
            _backend.record_event("obligations_reused")
            return verdict
        return None

    def record(self, store, table, verdict_key: str, ok: bool) -> None:
        key = self.family_key()
        payload = store.get(key)
        entries: List[dict] = []
        if payload is not None:
            try:
                entries = list(_backend.loads(payload))
            except Exception:
                entries = []
        fps = {name: row[0] for name, row in table.items()}
        entries = [
            e for e in entries
            if {n: r[0] for n, r in e.get("actions", {}).items()} != fps
        ]
        entries.insert(0, {"actions": table, "verdict": verdict_key, "ok": ok})
        del entries[_MANIFEST_LIMIT:]
        store.put(key, _backend.dumps(entries), kind="manifest")


def cached_obligation(
    family: ObligationFamily,
    compute: Callable[[], object],
):
    """Serve one obligation: exact replay, then frame reuse, then compute
    (recording both the exact artifact and the manifest entry)."""
    store = _backend.active_store()
    if store is None:
        return compute()
    exact_key = _keys.digest("obligation", (
        family.tag,
        _keys.program_material(family.program),
        _keys.faults_material(family.faults),
        _keys.spec_material(family.spec) if family.spec is not None else None,
        tuple(
            _keys.predicate_material(p) for p in (family.predicates or ())
        ) if family.predicates is not None else None,
        family.extra,
    ))
    payload = store.get(exact_key)
    if payload is not None:
        try:
            result = _backend.loads(payload)
        except Exception:
            result = None
        if result is not None:
            _backend.record_event("obligation_hits")
            return result
    table = family.action_table()
    if table is not None:
        reused = family.try_reuse(store, table)
        if reused is not None:
            # republish under the edited program's own exact key so the
            # next identical run replays in one lookup
            store.put(exact_key, _backend.dumps(reused), kind="obligation")
            family.record(store, table, exact_key, bool(reused.ok))
            return reused
    result = compute()
    store.put(exact_key, _backend.dumps(result), kind="obligation")
    if table is not None:
        family.record(store, table, exact_key, bool(getattr(result, "ok", False)))
    return result
