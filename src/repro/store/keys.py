"""Stable content fingerprints for the certificate store.

Every artifact in :mod:`repro.store` is content-addressed: the key is a
salted SHA-256 over a *canonical material* — a nested tuple built from
the semantic content of programs, actions, predicates, specs, fault
classes and symmetry declarations, never from object identities or
memory addresses.  Two processes (or machines) constructing the same
guarded-command program therefore derive the same key and share
certificates.

Material construction rules:

- **Actions** fingerprint by their compiled :class:`~repro.core.kernels.Plan`
  IR when one is attached (guard/effect opcodes, exact and
  representation-independent); otherwise by code-object introspection of
  the guard and statement callables — bytecode, recursively-fingerprinted
  constants and closure cells, names, and defaults.  Restricted actions
  (``Action.restrict``) fingerprint as (base, restriction predicate).
  Declared reads/writes frames join the material: a frame edit is a
  semantic declaration change and must produce a different key.
- **Predicates** fingerprint by name *and* callable: the name appears in
  verdict descriptions, so two predicates with equal functions but
  different names must not share verdict artifacts.
- **Programs** fingerprint by name, variable (name, domain) pairs in
  declaration order, per-action materials in declaration order, and the
  declared symmetry.
- **Opaque values** fall back to ``repr`` with memory addresses
  scrubbed; anything whose repr is still identity-dependent simply gets
  a cold key (a correctness non-event — the store misses).

The salt folds in the store schema version, the kernel engine version,
and the package version, so artifacts from incompatible builds never
collide.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any, Iterable, Optional, Tuple

__all__ = [
    "STORE_SCHEMA_VERSION",
    "digest",
    "fingerprint",
    "action_material",
    "predicate_material",
    "program_material",
    "faults_material",
    "spec_material",
    "symmetry_material",
    "states_digest",
]

#: bump to invalidate every artifact ever written by older builds
STORE_SCHEMA_VERSION = 1

_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _salt() -> str:
    try:
        from ..core.kernels import ENGINE_VERSION
    except ImportError:  # pragma: no cover - engine version always present
        ENGINE_VERSION = 0
    try:
        from .. import __version__ as package_version
    except ImportError:  # pragma: no cover
        package_version = "0"
    return f"repro-store/{STORE_SCHEMA_VERSION}/{ENGINE_VERSION}/{package_version}"


def digest(tag: str, material: Any) -> str:
    """The content key: salted SHA-256 hex digest of a canonical material."""
    payload = f"{_salt()}|{tag}|{material!r}".encode("utf-8", "surrogatepass")
    return hashlib.sha256(payload).hexdigest()


def fingerprint(value: Any) -> str:
    """Free-standing fingerprint of any supported object."""
    return digest("value", value_material(value))


# -- canonical materials -------------------------------------------------------

def _scrubbed_repr(value: Any) -> Tuple:
    return ("repr", type(value).__module__, type(value).__name__,
            _ADDRESS.sub("", repr(value)))


def _code_material(code) -> Tuple:
    consts = tuple(
        _code_material(c) if hasattr(c, "co_code") else value_material(c)
        for c in code.co_consts
    )
    return ("codeobj", code.co_code, consts, code.co_names,
            code.co_varnames[: code.co_argcount], code.co_freevars)


def callable_material(fn) -> Tuple:
    """Material of a plain callable: bytecode + consts + closure + defaults."""
    code = getattr(fn, "__code__", None)
    if code is None:
        call = getattr(type(fn), "__call__", None)
        code = getattr(call, "__code__", None)
        if code is None:
            return _scrubbed_repr(fn)
        # callable object: its behaviour is __call__'s code plus instance state
        state = tuple(
            sorted(
                (name, value_material(v))
                for name, v in vars(fn).items()
                if not name.startswith("__")
            )
        ) if hasattr(fn, "__dict__") else ()
        return ("callable", type(fn).__name__, _code_material(code), state)
    cells: Tuple = ()
    closure = getattr(fn, "__closure__", None)
    if closure:
        cells = tuple(value_material(cell.cell_contents) for cell in closure)
    defaults = tuple(value_material(d) for d in (fn.__defaults__ or ()))
    return ("code", _code_material(code), cells, defaults)


def predicate_material(predicate) -> Tuple:
    return ("pred", predicate.name, callable_material(predicate.fn))


def _frame_material(frame) -> Optional[Tuple[str, ...]]:
    if frame is None:
        return None
    return tuple(sorted(frame))


def action_material(action) -> Tuple:
    base = getattr(action, "_base", None)
    restriction = getattr(action, "_restriction", None)
    if base is not None and restriction is not None:
        return ("restricted", action.name, action_material(base),
                predicate_material(restriction))
    plan = getattr(action, "plan", None)
    if plan is not None:
        body: Tuple = ("plan", plan.guard, plan.effects)
    else:
        body = ("interp", callable_material(action.guard.fn),
                callable_material(action.statement))
    return ("action", action.name, body,
            _frame_material(action.reads), _frame_material(action.writes))


def _variable_material(variable) -> Tuple:
    return ("var", variable.name,
            tuple(value_material(v) for v in variable.domain))


def symmetry_material(symmetry) -> Any:
    if symmetry is None:
        return None
    attrs = tuple(
        sorted(
            (name, value_material(v))
            for name, v in vars(symmetry).items()
            if not name.startswith("_") and not callable(v)
        )
    )
    return ("sym", type(symmetry).__name__, attrs)


def program_material(program) -> Tuple:
    return (
        "program",
        program.name,
        tuple(_variable_material(v) for v in program.variables),
        tuple(action_material(a) for a in program.actions),
        symmetry_material(program.symmetry),
    )


def faults_material(faults_or_actions) -> Tuple:
    actions = getattr(faults_or_actions, "actions", faults_or_actions)
    name = getattr(faults_or_actions, "name", None)
    return ("faults", name, tuple(action_material(a) for a in actions))


def _component_material(component) -> Tuple:
    kind = type(component).__name__
    if kind == "StateInvariant":
        return ("stateinv", component.name,
                predicate_material(component.predicate))
    if kind == "LeadsTo":
        return ("leadsto", component.name,
                predicate_material(component.source),
                predicate_material(component.target))
    if kind == "TransitionInvariant":
        predicates = getattr(component, "predicates", None)
        return ("transinv", component.name,
                callable_material(component.relation),
                None if predicates is None else tuple(
                    predicate_material(p) for p in predicates
                ),
                bool(getattr(component, "stutter_true", False)))
    return ("component", kind, component.name)


def spec_material(spec) -> Tuple:
    return ("spec", spec.name,
            tuple(_component_material(c) for c in spec.components))


def value_material(value: Any) -> Any:
    """Generic canonical material of a value, dispatching on shape."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if type(value).__name__ == "EvaluatorMemo":
        # a compiled-evaluator cache in a predicate closure: pure
        # acceleration state, identical in content to the builder that
        # fills it — hashing its entries would drift the key as it warms
        return ("memo",)
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(value_material(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(value_material(v)) for v in value)))
    if isinstance(value, dict):
        return ("map", tuple(sorted(
            (repr(value_material(k)), repr(value_material(v)))
            for k, v in value.items()
        )))
    cls = type(value).__name__
    if cls == "Predicate":
        return predicate_material(value)
    if cls == "Action":
        return action_material(value)
    if cls == "Variable":
        return _variable_material(value)
    if cls == "Program":
        return program_material(value)
    if cls == "FaultClass":
        return faults_material(value)
    if cls == "Spec":
        return spec_material(value)
    if cls == "State":
        return ("state", value.schema.names, tuple(
            value_material(v) for v in value.values_tuple
        ))
    if callable(value):
        return callable_material(value)
    return _scrubbed_repr(value)


def states_digest(states: Iterable) -> str:
    """Streaming digest of an ordered state list (start sets can hold
    tens of thousands of states; the material is hashed incrementally
    rather than materialized)."""
    h = hashlib.sha256(_salt().encode("utf-8"))
    last_names = None
    for state in states:
        names = state.schema.names
        if names is not last_names:
            h.update(repr(names).encode("utf-8", "surrogatepass"))
            last_names = names
        h.update(repr(state.values_tuple).encode("utf-8", "surrogatepass"))
    return h.hexdigest()
