"""Work-stealing job queues for the ``repro serve`` front end.

The certificate store (PR 9) made artifacts shared; this module makes
*work* shared.  A :class:`JobBoard` holds named FIFO queues of jobs —
campaign trial batches, census code-range shards — that pull-based
workers lease over the same HTTP protocol that moves artifacts:

- the **scheduler** (a ``repro campaign --distributed`` or ``repro
  census --distributed`` process) submits jobs whose ``job_id`` *is*
  the content key of the result it wants.  Submitting the same job
  twice is a no-op (idempotent resubmit), and a result that is already
  in the store means the job never needs to run at all — a re-run
  batch is a cache hit, not a recount;
- **workers** (``repro worker --store URL``) lease the next pending
  job with a deadline.  A worker that dies mid-batch simply lets its
  lease expire; the reaper re-queues the job and another worker picks
  it up.  Because results are content-addressed, a slow original
  worker completing *after* the re-issue writes the same artifact —
  completion is idempotent from any worker;
- the **server** (:mod:`repro.store.serve`) exposes the board under
  ``/jobs/<queue>/...`` next to ``/a/<key>`` and reports per-queue
  depth/lease/miss counters in ``/stats`` and ``/healthz``.

The board is deliberately in-memory: jobs describe *recomputable* work
whose results persist in the content-addressed store, so losing the
board on a server restart costs one re-submission pass, never a wrong
answer.

Determinism is untouched by any of this: a job's payload pins the
exact trial range (or census shard) and every per-trial seed is a pure
function of the master seed, so which worker runs a batch — or how
many times it runs — is unobservable in the merged result.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from .backend import with_retries

__all__ = [
    "Job",
    "JobQueue",
    "JobBoard",
    "JobClient",
    "default_worker_id",
]

#: a job that failed (worker reported an error) more than this many
#: times is parked as ``failed`` instead of being re-queued forever
MAX_ATTEMPTS = 5


class Job:
    """One unit of leasable work.

    ``job_id`` doubles as the idempotency token — schedulers use the
    content key of the result they want, so duplicate submissions (from
    retries, restarts, or two racing schedulers) collapse onto one job.
    ``result_key`` names the store artifact whose presence *is* the
    completion signal for pollers that never talk to the queue.
    """

    __slots__ = (
        "job_id", "queue", "payload", "result_key", "state",
        "worker", "lease_deadline", "leases", "submits", "error",
    )

    def __init__(self, job_id: str, queue: str, payload: Dict[str, Any],
                 result_key: Optional[str]):
        self.job_id = job_id
        self.queue = queue
        self.payload = payload
        self.result_key = result_key
        self.state = "pending"   # pending | leased | done | failed
        self.worker: Optional[str] = None
        self.lease_deadline: Optional[float] = None
        self.leases = 0
        self.submits = 1
        self.error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "queue": self.queue,
            "payload": self.payload,
            "result_key": self.result_key,
            "state": self.state,
            "worker": self.worker,
            "leases": self.leases,
            "error": self.error,
        }


class JobQueue:
    """FIFO queue with leases.  Not thread-safe on its own — the owning
    :class:`JobBoard` serializes access (and injects the clock, so
    lease-expiry tests need no sleeping)."""

    def __init__(self, name: str, clock: Callable[[], float] = time.monotonic):
        self.name = name
        self._clock = clock
        self._jobs: Dict[str, Job] = {}
        self._pending: deque = deque()
        self._leased: Dict[str, Job] = {}
        self.submitted = 0
        self.resubmitted = 0
        self.leased_total = 0
        self.lease_misses = 0
        self.completed = 0
        self.expired = 0
        self.failures = 0
        self.workers: set = set()

    # -- scheduler side --------------------------------------------------------
    def submit(self, payload: Dict[str, Any], job_id: str,
               result_key: Optional[str] = None) -> Job:
        job = self._jobs.get(job_id)
        if job is not None:
            # idempotent resubmit: done stays done, pending stays queued
            # exactly once, a parked failure gets a fresh chance
            job.submits += 1
            self.resubmitted += 1
            if job.state == "failed":
                job.state = "pending"
                job.error = None
                self._pending.append(job.job_id)
            return job
        job = Job(job_id, self.name, payload, result_key)
        self._jobs[job_id] = job
        self._pending.append(job_id)
        self.submitted += 1
        return job

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    # -- worker side -----------------------------------------------------------
    def reap(self) -> int:
        """Re-queue every expired lease; returns how many were re-issued."""
        now = self._clock()
        expired = [
            job for job in self._leased.values()
            if job.lease_deadline is not None and job.lease_deadline <= now
        ]
        for job in expired:
            del self._leased[job.job_id]
            job.state = "pending"
            job.worker = None
            job.lease_deadline = None
            self._pending.append(job.job_id)
            self.expired += 1
        return len(expired)

    def has_pending(self) -> bool:
        """Cheap hint for the server's long-poll loop: reap expired
        leases, then report whether anything is actually leasable.  A
        ``True`` can still race another worker to the job — callers must
        treat it as a hint and re-``lease``, never as a reservation."""
        self.reap()
        return any(
            self._jobs[job_id].state == "pending"
            for job_id in self._pending
        )

    def lease(self, worker: str, lease_s: float) -> Optional[Job]:
        self.reap()
        self.workers.add(worker)
        while self._pending:
            job = self._jobs[self._pending.popleft()]
            if job.state != "pending":
                continue  # completed (or re-leased) while queued
            job.state = "leased"
            job.worker = worker
            job.lease_deadline = self._clock() + max(lease_s, 0.001)
            job.leases += 1
            self.leased_total += 1
            self._leased[job.job_id] = job
            return job
        self.lease_misses += 1
        return None

    def complete(self, job_id: str, worker: Optional[str] = None,
                 result_key: Optional[str] = None) -> str:
        job = self._jobs.get(job_id)
        if job is None:
            return "unknown"
        if job.state == "done":
            return "already-done"
        # any completion wins, even from a worker whose lease expired —
        # results are content-addressed, so every completion is the same
        self._leased.pop(job_id, None)
        job.state = "done"
        if result_key is not None:
            job.result_key = result_key
        job.worker = worker or job.worker
        job.lease_deadline = None
        self.completed += 1
        return "done"

    def fail(self, job_id: str, worker: Optional[str] = None,
             error: Optional[str] = None) -> str:
        job = self._jobs.get(job_id)
        if job is None:
            return "unknown"
        if job.state == "done":
            return "already-done"
        self._leased.pop(job_id, None)
        self.failures += 1
        job.error = error
        if job.leases >= MAX_ATTEMPTS:
            job.state = "failed"
            return "failed"
        job.state = "pending"
        job.worker = None
        job.lease_deadline = None
        self._pending.append(job_id)
        return "requeued"

    # -- observability ---------------------------------------------------------
    def counters(self) -> Dict[str, Any]:
        self.reap()
        depth = sum(
            1 for job in self._jobs.values() if job.state == "pending"
        )
        return {
            "depth": depth,
            "leased": len(self._leased),
            "done": self.completed,
            "failed": sum(
                1 for job in self._jobs.values() if job.state == "failed"
            ),
            "submitted": self.submitted,
            "resubmitted": self.resubmitted,
            "leases": self.leased_total,
            "lease_misses": self.lease_misses,
            "expired": self.expired,
            "failures": self.failures,
            "workers": len(self.workers),
        }


class JobBoard:
    """Thread-safe registry of named :class:`JobQueue`\\ s.

    The asyncio server drives it from one thread, but tests (and the
    in-process scheduler used by the parity suite) call it directly
    from several — every operation takes the board lock.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._queues: Dict[str, JobQueue] = {}
        self._lock = threading.Lock()

    def queue(self, name: str) -> JobQueue:
        with self._lock:
            q = self._queues.get(name)
            if q is None:
                q = self._queues[name] = JobQueue(name, self._clock)
            return q

    def submit(self, queue: str, payload: Dict[str, Any], job_id: str,
               result_key: Optional[str] = None) -> Dict[str, Any]:
        q = self.queue(queue)
        with self._lock:
            return q.submit(payload, job_id, result_key).as_dict()

    def lease(self, queue: str, worker: str,
              lease_s: float) -> Optional[Dict[str, Any]]:
        q = self.queue(queue)
        with self._lock:
            job = q.lease(worker, lease_s)
            return None if job is None else job.as_dict()

    def peek(self, queue: str) -> bool:
        q = self.queue(queue)
        with self._lock:
            return q.has_pending()

    def complete(self, queue: str, job_id: str,
                 worker: Optional[str] = None,
                 result_key: Optional[str] = None) -> Dict[str, str]:
        q = self.queue(queue)
        with self._lock:
            return {"status": q.complete(job_id, worker, result_key)}

    def fail(self, queue: str, job_id: str, worker: Optional[str] = None,
             error: Optional[str] = None) -> Dict[str, str]:
        q = self.queue(queue)
        with self._lock:
            return {"status": q.fail(job_id, worker, error)}

    def job(self, queue: str, job_id: str) -> Optional[Dict[str, Any]]:
        q = self.queue(queue)
        with self._lock:
            job = q.job(job_id)
            return None if job is None else job.as_dict()

    def status(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {name: q.counters() for name, q in self._queues.items()}


# -- HTTP client ---------------------------------------------------------------

def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class JobClient:
    """HTTP client for the ``/jobs`` endpoints of ``repro serve``.

    Transport errors retry with exponential backoff + full jitter
    (shared with :class:`~repro.store.backend.RemoteStore`); a server
    that stays down after the retries raises — unlike artifact reads, a
    scheduler or worker cannot degrade a *lease* to a cache miss.
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 retries: int = 4, backoff: float = 0.25):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    def _call(self, path: str, payload: Optional[Dict[str, Any]] = None,
              method: Optional[str] = None) -> Optional[Dict[str, Any]]:
        if method is None:
            method = "GET" if payload is None else "POST"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers=headers,
        )

        def attempt():
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = response.read()
                return response.status, body

        status, body = with_retries(
            attempt, retries=self.retries, backoff=self.backoff
        )
        if status == 204 or not body:
            return None
        return json.loads(body)

    def submit(self, queue: str, payload: Dict[str, Any], job_id: str,
               result_key: Optional[str] = None) -> Dict[str, Any]:
        return self._call(f"/jobs/{queue}/submit", {
            "id": job_id, "payload": payload, "result_key": result_key,
        })

    def lease(self, queue: str, worker: str, lease_s: float = 30.0,
              wait_s: float = 0.0) -> Optional[Dict[str, Any]]:
        """Lease the next pending job.  ``wait_s > 0`` long-polls: the
        server parks the request until a job is leasable or the wait
        elapses, so idle workers hold one open request instead of
        hammering the queue."""
        return self._call(f"/jobs/{queue}/lease", {
            "worker": worker, "lease_s": lease_s, "wait_s": wait_s,
        })

    def complete(self, queue: str, job_id: str, worker: str,
                 result_key: Optional[str] = None) -> Dict[str, Any]:
        return self._call(f"/jobs/{queue}/complete", {
            "id": job_id, "worker": worker, "result_key": result_key,
        })

    def fail(self, queue: str, job_id: str, worker: str,
             error: str) -> Dict[str, Any]:
        return self._call(f"/jobs/{queue}/fail", {
            "id": job_id, "worker": worker, "error": error,
        })

    def job(self, queue: str, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            return self._call(f"/jobs/{queue}/job/{job_id}")
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise

    def queue_status(self) -> Dict[str, Any]:
        return self._call("/stats").get("queues", {})

    def healthz(self) -> Optional[Dict[str, Any]]:
        """Liveness probe; ``None`` (never an exception) when the server
        is unreachable — schedulers use this to decide between
        distributed and in-process execution."""
        try:
            return self._call("/healthz")
        except Exception:
            return None
