"""Persistent content-addressed certificate store.

Explored graphs, region fixpoints, tolerance verdicts and theorem
witness certificates are cached across processes and machines, keyed by
salted content fingerprints of the checked objects (:mod:`.keys`).
Backends (:mod:`.backend`) range from a local sqlite file to a
``repro serve`` HTTP front end (:mod:`.serve`); the exploration layer
talks to :mod:`.artifacts`, the verification layer to
:mod:`.certificates` — including frame-aware *incremental
re-verification* when a single action of a certified program changes.
"""

from .backend import (
    BaseStore,
    FileStore,
    MemoryStore,
    RemoteStore,
    SQLiteStore,
    active_store,
    record_event,
    register_reset_hook,
    reset_handles as reset_store_handles,
    reset_stats,
    set_active_store,
    stats,
    store_from_spec,
)
from .keys import STORE_SCHEMA_VERSION, digest, fingerprint
from .artifacts import (
    ROWS_STATE_LIMIT,
    load_or_assemble_system,
    save_system_artifacts,
    system_key,
)
from .certificates import (
    ObligationFamily,
    cached_obligation,
    certificate_key,
    closure_via_rows,
    lookup_certificate,
    predicate_reads,
    record_certificate,
)

__all__ = [
    "BaseStore",
    "SQLiteStore",
    "FileStore",
    "MemoryStore",
    "RemoteStore",
    "store_from_spec",
    "active_store",
    "set_active_store",
    "reset_store_handles",
    "register_reset_hook",
    "record_event",
    "stats",
    "reset_stats",
    "STORE_SCHEMA_VERSION",
    "digest",
    "fingerprint",
    "system_key",
    "load_or_assemble_system",
    "save_system_artifacts",
    "ROWS_STATE_LIMIT",
    "certificate_key",
    "lookup_certificate",
    "record_certificate",
    "cached_obligation",
    "ObligationFamily",
    "closure_via_rows",
    "predicate_reads",
]
