"""A SIEFAST-style simulation session (paper Section 7).

Run:  python examples/siefast_simulation.py

Three acts:

1. a heartbeat failure detector on a lossy, jittery network — the
   timeout / false-suspicion tradeoff, measured;
2. a crash-and-restart campaign against a replicated service with an
   online global-predicate monitor measuring availability;
3. the "hybrid" bridge: the *model-checked* mutual-exclusion program is
   executed under a random scheduler with injected token losses, and
   the corrector's recovery time distribution is measured — the runtime
   shadow of its nonmasking convergence certificate.
"""

import random

from repro.failure_detectors import run_crash_experiment
from repro.programs import mutual_exclusion
from repro.sim import (
    ChannelConfig,
    CrashInjector,
    Network,
    PredicateMonitor,
    RandomScheduler,
    RestartInjector,
    SimProcess,
    simulate,
)


def act_one_failure_detection() -> None:
    print("— act 1: heartbeat failure detection on a bad network —")
    print("  (period 1.0, crash at t=50, 5% loss, 0.5 jitter)")
    for timeout in (1.5, 2.0, 3.0, 6.0, 12.0):
        result = run_crash_experiment(
            timeout, jitter=0.5, loss_probability=0.05, seed=11
        )
        print("  " + result.as_row())
    print("  shorter timeouts detect faster but suspect the living — the "
          "Chandra–Toueg tradeoff.")


class Server(SimProcess):
    def __init__(self, pid):
        super().__init__(pid)
        self.served = 0

    def on_message(self, sender, message):
        self.served += 1
        self.send(sender, ("ack", message))


class Client(SimProcess):
    def __init__(self, pid, servers):
        super().__init__(pid)
        self.servers = list(servers)
        self.sent = 0
        self.acked = 0

    def on_start(self):
        self.set_timer("tick", 1.0)

    def on_timer(self, name):
        self.send(self.servers[self.sent % len(self.servers)], self.sent)
        self.sent += 1
        self.set_timer("tick", 1.0)

    def on_message(self, sender, message):
        self.acked += 1


def act_two_crash_campaign() -> None:
    print("\n— act 2: crash/restart campaign against a replicated service —")
    network = Network(seed=3, default_channel=ChannelConfig(delay=0.2))
    network.add_process(Server("s1"))
    network.add_process(Server("s2"))
    client = network.add_process(Client("c", ["s1", "s2"]))
    CrashInjector(time=20, pid="s1").arm(network)
    RestartInjector(time=45, pid="s1").arm(network)
    CrashInjector(time=70, pid="s2").arm(network)
    monitor = PredicateMonitor(
        network,
        predicate=lambda snap: not (
            snap["s1"]["crashed"] and snap["s2"]["crashed"]
        ),
        period=1.0,
        name="some replica up",
    )
    network.run(until=100)
    print(f"  requests sent   : {client.sent}")
    print(f"  acks received   : {client.acked}")
    print(f"  service uptime  : {monitor.fraction_true():.0%}")
    print(f"  trace events    : {len(network.trace)} "
          f"({len(network.events('drop'))} drops)")


def act_three_hybrid() -> None:
    print("\n— act 3: hybrid run of the verified mutual-exclusion program —")
    model = mutual_exclusion.build(3)
    legitimate = next(s for s in model.tolerant.states() if model.invariant(s))
    recoveries = []
    for seed in range(30):
        # inject at step 5: the receive → CS → pass cycle is three steps
        # long, so step 5 is a post-exit state where the token is in
        # transit and the loss fault is enabled.
        trace = simulate(
            model.tolerant, legitimate, RandomScheduler(seed),
            steps=80, faults=model.faults, fault_times=[5],
        )
        lost_at = None
        for index, state in enumerate(trace):
            tokens = sum(1 for i in range(model.size) if state[f"tok{i}"])
            if tokens == 0 and lost_at is None:
                lost_at = index
            if lost_at is not None and tokens == 1:
                recoveries.append(index - lost_at)
                break
    mean = sum(recoveries) / len(recoveries)
    print(f"  injected token losses: 30; recoveries observed: {len(recoveries)}")
    print(f"  recovery steps: min {min(recoveries)}, mean {mean:.1f}, "
          f"max {max(recoveries)}")
    print("  (the nonmasking certificate guarantees recovery; the "
          "simulation prices it)")


def main() -> None:
    act_one_failure_detection()
    act_two_crash_campaign()
    act_three_hybrid()


if __name__ == "__main__":
    main()
