"""Multitolerance: one system, two fault-classes, two component sets.

Run:  python examples/multitolerant_mutex.py

The paper's closing argument is that detectors and correctors enable
*multitolerance* — tolerating several fault-classes, each to the
appropriate degree.  The mutual-exclusion ring here faces:

- **token loss**   → corrected by a regeneration corrector;
- **token duplication** → detected by a one-token entry guard (so
  exclusion is never violated) and corrected by a dedup corrector.

Each claim is model-checked separately, then jointly (both fault
classes striking in the same run), and the baseline without the second
component set is shown to fail with a counterexample.
"""

from repro.core import (
    ToleranceRequirement,
    is_masking_tolerant,
    is_multitolerant,
)
from repro.programs import mutual_exclusion


def main() -> None:
    mutex = mutual_exclusion.build(3)

    print("— requirement 1: masking tolerance to token loss —")
    print(
        is_masking_tolerant(
            mutex.multitolerant, mutex.faults, mutex.spec_strong,
            mutex.invariant, mutex.span,
        )
    )

    print("\n— requirement 2: masking tolerance to token duplication —")
    print(
        is_masking_tolerant(
            mutex.multitolerant, mutex.duplication, mutex.spec_strong,
            mutex.invariant, mutex.span_duplication,
        )
    )

    print("\n— both at once (interaction check included) —")
    requirements = (
        ToleranceRequirement(mutex.faults, "masking", mutex.span),
        ToleranceRequirement(
            mutex.duplication, "masking", mutex.span_duplication
        ),
    )
    print(
        is_multitolerant(
            mutex.multitolerant, mutex.spec_strong, mutex.invariant,
            requirements,
        )
    )

    print("\n— the baseline (loss-only components) against duplication —")
    verdict = is_masking_tolerant(
        mutex.tolerant, mutex.duplication, mutex.spec_strong,
        mutex.invariant, mutex.span_duplication,
    )
    print(verdict)
    print("\nThe counterexample above is the design argument: tolerating a "
          "new fault-class is adding the detector/corrector pair for it.")


if __name__ == "__main__":
    main()
