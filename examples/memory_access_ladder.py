"""The paper's running example, end to end (Figures 1-3).

Run:  python examples/memory_access_ladder.py

Builds the memory-access family (p, pf, pn, pm), certifies each rung of
the tolerance ladder, and then applies the paper's theorems to *extract*
the detector and corrector components — printing the constructed witness
predicates.
"""

from repro import theory
from repro.core import (
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    violates_spec,
)
from repro.programs import memory_access


def main() -> None:
    m = memory_access.build()

    print("=" * 70)
    print("The intolerant program p violates SPEC_mem under page faults:")
    print("=" * 70)
    print(
        violates_spec(
            m.p, m.spec.safety_part(), m.S_p,
            fault_actions=list(m.fault_anytime.actions),
        )
    )

    print()
    print("=" * 70)
    print("Figure 1 — fail-safe pf (detector added):")
    print("=" * 70)
    print(is_failsafe_tolerant(m.pf, m.fault_before_witness, m.spec,
                               m.S_pf, m.T_pf))

    print()
    print("=" * 70)
    print("Figure 2 — nonmasking pn (corrector added):")
    print("=" * 70)
    print(is_nonmasking_tolerant(m.pn, m.fault_anytime, m.spec,
                                 m.S_pn, m.T_pn))

    print()
    print("=" * 70)
    print("Figure 3 — masking pm (both):")
    print("=" * 70)
    print(is_masking_tolerant(m.pm, m.fault_before_witness, m.spec,
                              m.S_pm, m.T_pm))

    print()
    print("=" * 70)
    print("Theorem 3.4 — extracting the detector from pf:")
    print("=" * 70)
    built = theory.detector_witness(
        m.pf, m.p, m.p.action("p1"), m.S_pf, m.spec.safety_part()
    )
    print(f"  base action    : {built.base_action}")
    print(f"  embedded action: {built.embedded_action}")
    print(f"  witness Z      : {built.witness.name}")
    print(f"  detection X    : {built.detection.name}")
    print(theory.theorem_3_4(m.pf, m.p, m.S_pf, m.spec.safety_part()))

    print()
    print("=" * 70)
    print("Theorem 4.1 — extracting the corrector from pn:")
    print("=" * 70)
    corrector = theory.corrector_witness(m.pn, m.S_pn, m.T_pn)
    print(f"  witness Z      : {corrector.witness.name}")
    print(f"  correction X   : {corrector.correction.name}")
    print(theory.theorem_4_1(m.pn, m.p, m.spec, m.S_pn, m.T_pn))

    print()
    print("=" * 70)
    print("Theorem 5.5 — masking pm contains both:")
    print("=" * 70)
    print(
        theory.theorem_5_5(
            m.pm, m.pn, m.spec,
            invariant=m.S_pn, restored=m.S_pm,
            span=m.T_pm, faults=m.fault_before_witness,
        )
    )


if __name__ == "__main__":
    main()
