"""A fault-injection campaign walkthrough (repro.campaigns).

Run:  python examples/fault_campaign.py

The paper's tolerance classes — fail-safe, nonmasking, masking — are
defined over *all* computations of a program under a fault-class; the
model checker in repro.core certifies them exhaustively on small state
spaces.  A campaign attacks the same question statistically at the
message-passing level: sweep seeded random fault schedules over a
simulated scenario, classify every trial, and report the observed mix.

Three acts:

1. a single trial, unpacked — the schedule that was drawn, the
   predicate transitions it caused, and the resulting classification;
2. a real campaign over the token ring, with the verdict line;
3. the fault-budget sweep: pushing TMR from its masking design point
   (one fault per trial) into the regime where majorities break.
"""

import io

from repro.campaigns import Campaign, get_scenario, random_schedule


def act_one_single_trial() -> None:
    print("— act 1: one trial, unpacked —")
    scenario = get_scenario("token_ring")
    schedule = random_schedule(scenario.spec, 42)
    print(f"  drew {len(schedule)} injectors from seed 42:")
    for fault in schedule.describe():
        description = {k: v for k, v in fault.items() if k != "kind"}
        print(f"    t={fault['time']:6.2f}  {fault['kind']:10s} {description}")

    campaign = Campaign(scenario, trials=1, seed=42, stream=io.StringIO())
    result = campaign.run()
    transitions = [
        e for e in campaign.log.events if e["event"] == "transition"
    ]
    print(f"  the trial produced {len(transitions)} predicate transitions:")
    for t in transitions[:8]:
        print(f"    t={t['time']:6.2f}  {t['monitor']:10s} -> {t['value']}")
    record = result.trials[0]
    print(f"  classification: outcome={record.outcome} "
          f"safety_ok={record.metrics.safety_ok} "
          f"converged={record.metrics.converged}")
    print()


def act_two_token_ring_campaign() -> None:
    print("— act 2: a 50-trial campaign against the token ring —")
    result = Campaign(
        get_scenario("token_ring"), trials=50, seed=0
    ).run()
    print(result.format())
    print("  no trial ever broke mutual exclusion; the rare 'failsafe'")
    print("  trials are runs the horizon cut off mid-recovery. The")
    print("  regeneration corrector earns the ring its tolerance claim.")
    print()


def act_three_budget_sweep() -> None:
    print("— act 3: sweeping TMR's fault budget past its design point —")
    scenario = get_scenario("tmr")
    print("  budget  verdict     masking  failsafe  nonmasking  intolerant")
    for budget in (1, 2, 4, 8):
        result = Campaign(
            scenario, trials=30, seed=1, budget=budget
        ).run()
        counts = result.summary["counts"]
        print(
            f"  {budget:6d}  {result.verdict:10s} "
            f"{counts['masking']:7d} {counts['failsafe']:9d} "
            f"{counts['nonmasking']:11d} {counts['intolerant']:11d}"
        )
    print("  one fault per trial is always masked (the §6.1 guarantee);")
    print("  pile on concurrent faults and the majority argument erodes —")
    print("  measured, not asserted.")


if __name__ == "__main__":
    act_one_single_trial()
    act_two_token_ring_campaign()
    act_three_budget_sweep()
