"""The synthesis workbench: calculate tolerance instead of designing it.

Run:  python examples/synthesis_workbench.py

Takes the bare, fault-intolerant memory-access program and derives all
three tolerant versions automatically — the companion method [4] the
paper's introduction summarizes ("how to calculate the components
required for achieving fault-tolerance").  Each synthesized program is
re-verified from scratch.
"""

from repro import synthesis
from repro.core import TRUE
from repro.programs import memory_access


def main() -> None:
    model = memory_access.build()
    program, faults, spec = model.p, model.fault_anytime, model.spec
    print(f"input: {program!r}")
    print(f"fault: {faults!r}")
    print(f"spec : {spec!r}")

    print("\n— fail-safe synthesis (add detectors) —")
    failsafe = synthesis.add_failsafe(program, faults, spec)
    for name, predicate in failsafe.detection_predicates.items():
        print(f"  detection predicate for {name}: {predicate.name}")
    print(failsafe.verify(faults, spec))

    print("\n— nonmasking synthesis (add a corrector) —")
    nonmasking = synthesis.add_nonmasking(program, faults, model.S_pn, TRUE)
    for corrector in nonmasking.correctors:
        print(f"  corrector action: {corrector.name} "
              f"(guard {corrector.guard.name})")
    print(nonmasking.verify(faults, spec))

    print("\n— masking synthesis (both) —")
    masking = synthesis.add_masking(program, faults, spec)
    print(f"  program: {masking.program!r}")
    print(masking.verify(faults, spec))

    print("\n— scaling: synthesis cost vs state-space size —")
    import time

    print(f"{'domain':>7} {'states':>7} {'failsafe':>9} {'masking':>9}")
    for domain_size in (2, 4, 8, 12):
        big = memory_access.build(
            value=1, data_domain=tuple(range(domain_size))
        )
        t0 = time.perf_counter()
        synthesis.add_failsafe(big.p, big.fault_anytime, big.spec)
        t_failsafe = time.perf_counter() - t0
        t0 = time.perf_counter()
        synthesis.add_masking(big.p, big.fault_anytime, big.spec)
        t_masking = time.perf_counter() - t0
        print(f"{domain_size:>7} {big.p.state_count():>7} "
              f"{t_failsafe * 1000:>7.1f}ms {t_masking * 1000:>7.1f}ms")


if __name__ == "__main__":
    main()
