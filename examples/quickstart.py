"""Quickstart: build a tiny fault-intolerant program, add a detector and
a corrector, and certify all three tolerance classes.

Run:  python examples/quickstart.py

The scenario is a single register that a writer must publish correctly:
``ready`` may only be raised once ``value`` holds the payload, and a
glitch fault can clear the value.  We build:

- the intolerant writer (raises ``ready`` blindly);
- a fail-safe version (a *detector* guards the publish);
- a nonmasking version (a *corrector* rewrites the value);
- a masking version (both) — and model-check each claim.
"""

from repro import (
    Action,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    StateInvariant,
    TRUE,
    Variable,
    assign,
    is_detector,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
)

PAYLOAD = 7

value = Variable("value", [0, PAYLOAD])
ready = Variable("ready", [False, True])

value_ok = Predicate(lambda s: s["value"] == PAYLOAD, name="value=payload")
published = Predicate(lambda s: s["ready"], name="ready")

# The problem specification: never publish a wrong value; eventually publish.
spec = Spec(
    [
        StateInvariant(published.implies(value_ok), name="published ⇒ correct"),
        LeadsTo(TRUE, published, name="eventually published"),
    ],
    name="SPEC_publish",
)

# The fault: a glitch clears the value (only before publication — the
# paper's page fault is guarded the same way for the same reason: the
# fault-span must be closed under the fault).
glitch = FaultClass(
    [Action("glitch", value_ok & ~published, assign(value=0))],
    name="glitch",
)

# 1. The intolerant writer: writes the payload, then publishes blindly.
intolerant = Program(
    [value, ready],
    [
        Action("write", ~value_ok, assign(value=PAYLOAD)),
        Action("publish", ~published, assign(ready=True)),
    ],
    name="writer",
)

# 2. Fail-safe: a detector (the guard `value_ok`) restricts publication —
#    the paper's ∧-composition of a detector with an action.
failsafe = Program(
    [value, ready],
    [
        Action("publish", value_ok & ~published, assign(ready=True)),
    ],
    name="writer_failsafe",
)

# 3. Nonmasking: a corrector rewrites the value after a glitch.
nonmasking = Program(
    [value, ready],
    [
        Action("publish", ~published, assign(ready=True)),
        Action("correct", ~value_ok, assign(value=PAYLOAD)),
    ],
    name="writer_nonmasking",
)

# 4. Masking: detector AND corrector.
masking = Program(
    [value, ready],
    [
        Action("publish", value_ok & ~published, assign(ready=True)),
        Action("correct", ~value_ok, assign(value=PAYLOAD)),
    ],
    name="writer_masking",
)


def main() -> None:
    invariant = value_ok
    span = TRUE

    print("— the detector in isolation —")
    detector = Program(
        [value, ready],
        [Action("witness", value_ok & ~published, assign(ready=True))],
        name="publish_guard",
    )
    print(is_detector(detector, published, value_ok,
                      published.implies(value_ok)))

    print("\n— the tolerance ladder —")
    print(is_failsafe_tolerant(failsafe, glitch, spec, invariant, span))
    print()
    print(is_nonmasking_tolerant(nonmasking, glitch, spec, TRUE, span))
    print()
    print(is_masking_tolerant(masking, glitch, spec, invariant, span))

    print("\n— and the intolerant writer, for contrast —")
    verdict = is_failsafe_tolerant(intolerant, glitch, spec, invariant, span)
    print(verdict)


if __name__ == "__main__":
    main()
