"""Dijkstra's token ring: self-stabilization = nonmasking tolerance.

Run:  python examples/self_stabilizing_token_ring.py

Certifies the ring as a corrector of its own invariant (the Arora–Gouda
special case), then measures stabilization: exact demonic worst case vs
random-schedule averages, for growing rings — the quantitative table of
experiment APP-TR.
"""

import random

from repro.core import TRUE, is_corrector, is_nonmasking_tolerant
from repro.programs import token_ring
from repro.sim import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    convergence_steps,
    worst_case_convergence_steps,
)


def main() -> None:
    print("— qualitative certificates (n = 4) —")
    model = token_ring.build(4)
    print(
        is_nonmasking_tolerant(
            model.ring, model.faults, model.spec, model.invariant, TRUE
        )
    )
    print()
    print(is_corrector(model.ring, model.invariant, model.invariant, TRUE))

    print("\n— stabilization cost —")
    print(f"{'n':>3} {'states':>7} {'worst case':>11} "
          f"{'random mean':>12} {'adversarial':>12}")
    for size in (3, 4, 5, 6):
        model = token_ring.build(size)
        states = list(model.ring.states())
        worst = worst_case_convergence_steps(
            model.ring, states, model.invariant
        )
        rng = random.Random(size)
        samples = [rng.choice(states) for _ in range(25)]
        random_mean = sum(
            convergence_steps(model.ring, s, model.invariant,
                              RandomScheduler(i))
            for i, s in enumerate(samples)
        ) / len(samples)
        adversary_start = max(
            samples,
            key=lambda s: convergence_steps(
                model.ring, s, model.invariant, RoundRobinScheduler()
            ),
        )
        adversarial = convergence_steps(
            model.ring, adversary_start, model.invariant,
            AdversarialScheduler(model.ring, model.invariant, adversary_start),
        )
        print(f"{size:>3} {model.ring.state_count():>7} {worst:>11} "
              f"{random_mean:>12.1f} {adversarial:>12}")

    print("\nThe worst-case column grows quadratically — Dijkstra's "
          "classical O(n²) stabilization bound.")


if __name__ == "__main__":
    main()
