"""Section 6.1 — triple modular redundancy, two ways.

Run:  python examples/tmr_voting.py

First the paper's route: compose the detector DR and corrector CR with
the intolerant IR and certify each rung.  Then the synthesis route:
*calculate* the masking version from the bare IR with the companion
method, and compare the two.
"""

from repro import synthesis
from repro.core import (
    is_detector,
    is_failsafe_tolerant,
    is_masking_tolerant,
    refines_program,
    violates_spec,
)
from repro.programs import tmr


def main() -> None:
    model = tmr.build()

    print("— the intolerant IR under one-input corruption —")
    print(
        violates_spec(
            model.ir, model.spec.safety_part(), model.invariant,
            fault_actions=list(model.faults.actions),
        )
    )

    print("\n— DR as a stateless detector —")
    print(
        is_detector(
            model.detector_eval, model.witness_dr, model.detection_dr,
            model.span_inputs,
        )
    )

    print("\n— DR;IR is fail-safe —")
    print(
        is_failsafe_tolerant(
            model.dr_ir, model.faults, model.spec,
            model.invariant, model.span,
        )
    )

    print("\n— DR;IR ‖ CR is masking (this IS classical TMR) —")
    print(
        is_masking_tolerant(
            model.tmr, model.faults, model.spec,
            model.invariant, model.span,
        )
    )

    print("\n— the synthesis route: calculate masking TMR from bare IR —")
    synthesized = synthesis.add_masking(model.ir, model.faults, model.spec)
    print(synthesized.verify(model.faults, model.spec))
    print(f"  synthesized program: {synthesized.program!r}")
    print("  detection predicate guards:",
          {name: pred.name
           for name, pred in synthesized.failsafe_stage
           .detection_predicates.items()})

    print("\n— the synthesized and hand-composed systems coincide —")
    print(refines_program(synthesized.program, model.tmr, model.invariant,
                          check_fairness=False))


if __name__ == "__main__":
    main()
