"""Section 6.2 — Byzantine agreement, from n = 4 to the general case.

Run:  python examples/byzantine_agreement.py

Model-checks the paper's n = 4, f = 1 construction (the full 23k-state
space), then scales the claim with the OM(m) substrate: agreement and
validity at n = 3f + 1 for f up to 3, the sharpness of the threshold,
and the exponential message complexity.
"""

import itertools

from repro.core import is_failsafe_tolerant, is_masking_tolerant, violates_spec
from repro.programs import byzantine
from repro.programs.oral_messages import (
    check_agreement,
    check_validity,
    constant_lie_strategy,
    random_strategy,
    run_oral_messages,
    split_strategy,
)


def model_checked_n4() -> None:
    model = byzantine.build()
    print("— n = 4, f = 1, exhaustively model-checked —")
    print(
        violates_spec(
            model.ib_with_byz, model.spec.safety_part(), model.invariant_ib,
            fault_actions=list(model.faults.actions),
        )
    )
    print()
    print(
        is_failsafe_tolerant(
            model.failsafe, model.faults, model.spec,
            model.invariant, model.span,
        )
    )
    print()
    print(
        is_masking_tolerant(
            model.masking, model.faults, model.spec,
            model.invariant, model.span,
        )
    )


def om_scaling() -> None:
    print("\n— the general case via OM(m) —")
    strategies = [
        ("constant-0", constant_lie_strategy(0)),
        ("split", split_strategy()),
        ("random", random_strategy(5)),
    ]
    print(f"{'n':>3} {'f':>2} {'runs':>5} {'agreement':>10} "
          f"{'validity':>9} {'messages':>9}")
    for n, f in [(4, 1), (7, 2), (10, 3)]:
        runs = agreement = validity = 0
        messages = 0
        for byz in itertools.combinations(range(n), f):
            for _, strategy in strategies:
                run = run_oral_messages(
                    n, f, general_value=1, byzantine=byz, strategy=strategy
                )
                runs += 1
                agreement += check_agreement(run)
                validity += check_validity(run)
                messages = run.messages_sent
        print(f"{n:>3} {f:>2} {runs:>5} {agreement:>6}/{runs:<4}"
              f"{validity:>5}/{runs:<4} {messages:>9}")

    print("\n— the 3f+1 threshold is sharp (n = 3, f = 1) —")
    run = run_oral_messages(
        3, 1, general_value=1, byzantine=(2,),
        strategy=constant_lie_strategy(0),
    )
    print(f"  honest lieutenant decided {run.decisions} with general value "
          f"{run.general_value}: validity {'holds' if check_validity(run) else 'BROKEN'}")


def main() -> None:
    model_checked_n4()
    om_scaling()


if __name__ == "__main__":
    main()
