"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` (and ``python setup.py develop``)
work in offline environments that lack the ``wheel`` package needed for
PEP 660 editable installs.
"""

from setuptools import setup

setup()
