"""The message-passing token ring: distributed simulation of the
verified mutual-exclusion protocol."""

import pytest

from repro.sim.token_ring import RingProcess, run_ring_experiment


class TestProtocol:
    def test_lossless_circulation(self):
        result = run_ring_experiment(timeout=None, loss_probability=0.0,
                                     horizon=100, seed=0)
        assert result.total_visits > 50
        assert result.regenerations == 0
        assert result.max_tokens_observed == 1

    def test_fair_share_without_loss(self):
        from repro.sim import ChannelConfig, Network

        network = Network(seed=0, default_channel=ChannelConfig(delay=0.2))
        processes = [
            network.add_process(RingProcess(pid, 4, regeneration_timeout=None))
            for pid in range(4)
        ]
        network.run(until=200)
        visits = [p.visits for p in processes]
        assert max(visits) - min(visits) <= 1, "round-robin fairness"


class TestTokenLoss:
    def test_intolerant_ring_collapses(self):
        result = run_ring_experiment(timeout=None, loss_probability=0.05,
                                     horizon=400, seed=1)
        tolerant = run_ring_experiment(timeout=12.0, loss_probability=0.05,
                                       horizon=400, seed=1)
        assert result.total_visits < tolerant.total_visits / 5, (
            "one lost token freezes the intolerant ring"
        )
        assert result.regenerations == 0

    def test_corrector_restores_throughput(self):
        result = run_ring_experiment(timeout=12.0, loss_probability=0.05,
                                     horizon=400, seed=1)
        assert result.regenerations > 0
        assert result.total_visits > 100


class TestTimeoutTradeoff:
    def test_conservative_timeout_never_duplicates(self):
        result = run_ring_experiment(timeout=30.0, loss_probability=0.05,
                                     horizon=400, seed=1)
        assert result.max_tokens_observed <= 1

    def test_aggressive_timeout_duplicates_transiently(self):
        """The refinement hazard: implementing the global 'no token'
        detector as a local timeout loses Safeness when the timeout
        undercuts a slow round trip — the simulation exhibits the
        duplication the atomic model excludes."""
        result = run_ring_experiment(timeout=2.0, loss_probability=0.05,
                                     horizon=400, seed=1)
        assert result.max_tokens_observed > 1

    def test_latency_throughput_monotonicity(self):
        fast = run_ring_experiment(timeout=6.0, loss_probability=0.05,
                                   horizon=400, seed=1)
        slow = run_ring_experiment(timeout=30.0, loss_probability=0.05,
                                   horizon=400, seed=1)
        assert fast.total_visits > slow.total_visits

    def test_row_rendering(self):
        row = run_ring_experiment(timeout=6.0, horizon=50).as_row()
        assert "visits=" in row and "regenerations=" in row
