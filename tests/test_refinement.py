"""Unit tests for refinement checking."""

from repro.core.action import Action, assign, skip
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.refinement import (
    refines_program,
    refines_spec,
    start_states_of,
    system_from,
    violates_spec,
)
from repro.core.specification import LeadsTo, Spec, StateInvariant
from repro.core.state import State, Variable


def counter(limit=2, name="base"):
    return Program(
        [Variable("x", list(range(limit + 1)))],
        [
            Action(
                "inc",
                Predicate(lambda s, lim=limit: s["x"] < lim, f"x<{limit}"),
                assign(x=lambda s: s["x"] + 1),
            )
        ],
        name=name,
    )


class TestStartStates:
    def test_filtering(self, memory):
        states = start_states_of(memory.p, memory.S_p)
        assert states and all(memory.S_p(s) for s in states)

    def test_system_from(self):
        ts = system_from(counter(2), Predicate(lambda s: s["x"] == 0, "x=0"))
        assert len(ts.states) == 3


class TestRefinesSpec:
    def test_positive(self, memory):
        assert refines_spec(memory.p, memory.spec, memory.S_p)

    def test_closure_failure_detected(self):
        p = counter(2)
        low = Predicate(lambda s: s["x"] <= 1, "x≤1")
        spec = Spec([StateInvariant(TRUE)], name="trivial")
        result = refines_spec(p, spec, low)
        assert not result and "closed" in result.description

    def test_violates_is_negation(self, memory):
        assert not violates_spec(memory.p, memory.spec, memory.S_p)
        bad_spec = Spec(
            [StateInvariant(Predicate(lambda s: False, "false"))], name="impossible"
        )
        violation = violates_spec(memory.p, bad_spec, memory.S_p)
        assert violation
        assert violation.counterexample is not None

    def test_fault_actions_checked_for_safety(self, memory):
        # p alone is safe; with page faults it can read garbage.
        result = refines_spec(
            memory.p, memory.spec.safety_part(), memory.S_p,
            fault_actions=list(memory.fault_anytime.actions),
        )
        assert not result


class TestRefinesProgram:
    def test_paper_family(self, memory):
        assert refines_program(memory.pf, memory.p, memory.S_pf)
        assert refines_program(memory.pn, memory.p, memory.S_pn)
        assert refines_program(memory.pm, memory.p, memory.S_pm)
        assert refines_program(memory.pm, memory.pn, memory.S_pm)

    def test_missing_base_variables_rejected(self):
        base = counter()
        other = Program([Variable("y", [0, 1])], [], name="other")
        result = refines_program(other, base, TRUE)
        assert not result and "lacks base variables" in result.details

    def test_non_simulating_step_detected(self):
        base = counter(2)
        rogue = Program(
            [Variable("x", [0, 1, 2])],
            [Action("dec", Predicate(lambda s: s["x"] > 0, "x>0"),
                    assign(x=lambda s: s["x"] - 1))],
            name="rogue",
        )
        result = refines_program(rogue, base, TRUE)
        assert not result
        assert result.counterexample.kind == "transition"

    def test_premature_deadlock_detected(self):
        base = counter(2)
        lazy = Program(
            [Variable("x", [0, 1, 2])],
            [Action("inc_once", Predicate(lambda s: s["x"] == 0, "x=0"),
                    assign(x=1))],
            name="lazy",
        )
        result = refines_program(lazy, base, TRUE)
        assert not result
        assert "maximal" in (result.counterexample.note if result.counterexample else "")

    def test_divergent_stuttering_detected(self):
        base = counter(1)
        # spins on its own variable forever; the projection stutters at
        # x=0 where the base could (and under fairness must) move.
        spinner = Program(
            [Variable("x", [0, 1]), Variable("t", [0, 1])],
            [Action("spin", TRUE, assign(t=lambda s: 1 - s["t"]))],
            name="spinner",
        )
        result = refines_program(spinner, base, Predicate(lambda s: s["x"] == 0, "x=0"))
        assert not result
        assert result.counterexample.kind == "lasso"

    def test_stutter_past_base_deadlock_detected(self):
        base = counter(1)
        # base deadlocks at x=1 but the refined program ticks forever
        ticker = Program(
            [Variable("x", [0, 1]), Variable("t", [0, 1])],
            [
                Action("inc", Predicate(lambda s: s["x"] < 1, "x<1"),
                       assign(x=lambda s: s["x"] + 1)),
                Action("tick", Predicate(lambda s: s["x"] == 1, "x=1"),
                       assign(t=lambda s: 1 - s["t"])),
            ],
            name="ticker",
        )
        result = refines_program(ticker, base, TRUE)
        assert not result
        assert "deadlocked" in result.counterexample.note

    def test_self_loop_projection_is_allowed(self, memory):
        """pf2 rewrites data with the same value once stable — the
        projected no-change step is a genuine p step, not divergence."""
        assert refines_program(memory.pf, memory.p, memory.S_pf)

    def test_stuttering_disallowed_flag(self, memory):
        result = refines_program(
            memory.pf, memory.p, memory.S_pf, allow_stuttering=False
        )
        assert not result, "pf1 is a stutter on p's variables"

    def test_fairness_check_optional(self):
        base = counter(1)
        spinner = Program(
            [Variable("x", [0, 1]), Variable("t", [0, 1])],
            [Action("spin", TRUE, assign(t=lambda s: 1 - s["t"]))],
            name="spinner",
        )
        from_x0 = Predicate(lambda s: s["x"] == 0, "x=0")
        assert not refines_program(spinner, base, from_x0)
        assert refines_program(spinner, base, from_x0, check_fairness=False)
