"""Unit tests for the predicate algebra."""

from repro.core.predicate import FALSE, TRUE, Predicate, var_eq, var_in, var_ne
from repro.core.state import State, Variable, state_space

S00 = State(x=0, y=0)
S01 = State(x=0, y=1)
S10 = State(x=1, y=0)
S11 = State(x=1, y=1)
ALL = [S00, S01, S10, S11]

X1 = Predicate(lambda s: s["x"] == 1, name="x=1")
Y1 = Predicate(lambda s: s["y"] == 1, name="y=1")


class TestEvaluation:
    def test_call(self):
        assert X1(S10) and not X1(S01)

    def test_constants(self):
        assert TRUE(S00) and not FALSE(S00)

    def test_holds_everywhere(self):
        assert TRUE.holds_everywhere(ALL)
        assert not X1.holds_everywhere(ALL)

    def test_holds_somewhere(self):
        assert X1.holds_somewhere(ALL)
        assert not FALSE.holds_somewhere(ALL)

    def test_states_in(self):
        assert set(X1.states_in(ALL)) == {S10, S11}


class TestAlgebra:
    def test_conjunction(self):
        both = X1 & Y1
        assert both(S11) and not both(S10) and not both(S01)

    def test_disjunction(self):
        either = X1 | Y1
        assert either(S10) and either(S01) and not either(S00)

    def test_negation(self):
        assert (~X1)(S00) and not (~X1)(S10)

    def test_implication(self):
        imp = X1.implies(Y1)
        assert imp(S00) and imp(S01) and imp(S11) and not imp(S10)

    def test_de_morgan(self):
        lhs = ~(X1 & Y1)
        rhs = ~X1 | ~Y1
        assert lhs.equivalent_on(rhs, ALL)

    def test_names_compose(self):
        assert (X1 & Y1).name == "(x=1 ∧ y=1)"
        assert (~X1).name == "¬x=1"

    def test_rename(self):
        renamed = X1.rename("S")
        assert renamed.name == "S"
        assert renamed(S10)


class TestExtensional:
    def test_from_states(self):
        p = Predicate.from_states([S00, S11], name="diag")
        assert p(S00) and p(S11) and not p(S10)

    def test_from_states_empty_is_false(self):
        p = Predicate.from_states([])
        assert not any(p(s) for s in ALL)

    def test_implied_everywhere_by(self):
        assert Y1.implied_everywhere_by(X1 & Y1, ALL)
        assert not Y1.implied_everywhere_by(X1, ALL)

    def test_equivalent_on(self):
        assert X1.equivalent_on(Predicate(lambda s: s["x"] > 0), ALL)


class TestVarHelpers:
    def test_var_eq(self):
        assert var_eq("x", 1)(S10)
        assert not var_eq("x", 1)(S00)

    def test_var_ne(self):
        assert var_ne("x", 1)(S00)
        assert not var_ne("x", 1)(S10)

    def test_var_in(self):
        p = var_in("x", [1, 2])
        assert p(S10) and not p(S00)

    def test_over_state_space(self):
        variables = [Variable("x", [0, 1]), Variable("y", [0, 1])]
        count = sum(1 for s in state_space(variables) if var_eq("x", 1)(s))
        assert count == 2
