"""Parity: the indexed bitset fixpoints vs the set-based originals.

The region engine rewrote three fixpoints — the largest safe invariant,
the fault-unsafe region (the paper's ``ms``), and the liveness-violation
core — from set-scanning loops to bitset worklists over indexed
adjacency.  These tests pin the *pre-rewrite implementations* verbatim
as oracles and check that the new engine computes identical sets on
every bundled scenario.  If an engine change alters any of these
results, the parity failure localizes it immediately.
"""

from collections import deque
from typing import Dict, FrozenSet, List, Set

import pytest

from repro.core.exploration import TransitionSystem
from repro.core.fairness import liveness_violating_states
from repro.core.invariants import _safety_checks, largest_invariant_for_safety
from repro.core.specification import LeadsTo
from repro.core.state import State
from repro.synthesis.weakest import fault_unsafe_region


# -- the pre-rewrite implementations, pinned as oracles ---------------------

def _oracle_largest_invariant(program, spec) -> Set[State]:
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    candidate: Set[State] = {
        s for s in program.states() if all(check(s) for check in state_checks)
    }
    changed = True
    while changed:
        changed = False
        to_remove: Set[State] = set()
        for state in candidate:
            for action in program.actions:
                for successor in action.successors(state):
                    if successor not in candidate or not all(
                        check(state, successor) for check in transition_checks
                    ):
                        to_remove.add(state)
                        break
                else:
                    continue
                break
        if to_remove:
            candidate -= to_remove
            changed = True
    return candidate


def _oracle_fault_unsafe(faults, spec, states) -> Set[State]:
    state_checks, transition_checks = _safety_checks(spec.safety_part())
    universe: List[State] = list(states)
    region: Set[State] = {
        s for s in universe if not all(check(s) for check in state_checks)
    }
    changed = True
    while changed:
        changed = False
        for state in universe:
            if state in region:
                continue
            for fault_action in faults.actions:
                doomed = False
                for successor in fault_action.successors(state):
                    if successor in region:
                        doomed = True
                        break
                    if not all(check(successor) for check in state_checks):
                        doomed = True
                        break
                    if not all(
                        check(state, successor) for check in transition_checks
                    ):
                        doomed = True
                        break
                if doomed:
                    region.add(state)
                    changed = True
                    break
    return region


def _oracle_sccs(nodes, edges_from) -> List[Set[State]]:
    nodes = list(nodes)
    index_of: Dict[State, int] = {}
    lowlink: Dict[State, int] = {}
    on_stack: Set[State] = set()
    stack: List[State] = []
    components: List[Set[State]] = []
    counter = [0]
    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(edges_from(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(edges_from(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[State] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _oracle_fair_recurrent_sccs(ts, region) -> List[Set[State]]:
    def internal_successors(state):
        return [t for _, t in ts.program_edges_from(state) if t in region]

    recurrent: List[Set[State]] = []
    for component in _oracle_sccs(region, internal_successors):
        internal_edges = [
            (s, a, t)
            for s in component
            for a, t in ts.program_edges_from(s)
            if t in component
        ]
        if not internal_edges:
            continue
        internal_labels: FrozenSet[str] = frozenset(
            a for _, a, _ in internal_edges
        )
        fair = True
        for action in ts.program.actions:
            if all(action.enabled(s) for s in component):
                if action.name not in internal_labels:
                    fair = False
                    break
        if fair:
            recurrent.append(component)
    return recurrent


def _oracle_liveness_violating(ts, source, target) -> Set[State]:
    avoid_region: Set[State] = {s for s in ts.states if not target(s)}
    core: Set[State] = set()
    for component in _oracle_fair_recurrent_sccs(ts, avoid_region):
        core |= component
    for state in avoid_region:
        if ts.program.is_deadlocked(state):
            core.add(state)

    predecessors: Dict[State, List[State]] = {s: [] for s in ts.states}
    for state in ts.states:
        for _, nxt in ts.edges_from(state, include_faults=True):
            if nxt in predecessors:
                predecessors[nxt].append(state)

    danger: Set[State] = set(core)
    frontier = deque(core)
    while frontier:
        state = frontier.popleft()
        for previous in predecessors[state]:
            if previous in avoid_region and previous not in danger:
                danger.add(previous)
                frontier.append(previous)

    bad_sources = {s for s in danger if source(s)}
    violating: Set[State] = set(bad_sources)
    frontier = deque(bad_sources)
    while frontier:
        state = frontier.popleft()
        for previous in predecessors[state]:
            if previous not in violating:
                violating.add(previous)
                frontier.append(previous)
    return violating


# -- bundled scenarios ------------------------------------------------------

def _memory_access_cases():
    from repro.programs import memory_access

    m = memory_access.build()
    return [
        ("memory_access/p", m.p, m.fault_anytime, m.spec),
        ("memory_access/pf", m.pf, m.fault_before_witness, m.spec),
        ("memory_access/pn", m.pn, m.fault_anytime, m.spec),
        ("memory_access/pm", m.pm, m.fault_before_witness, m.spec),
    ]


def _small_cases():
    from repro.programs import (
        barrier,
        leader_election,
        mutual_exclusion,
        tmr,
        token_ring,
    )

    t = tmr.build()
    r = token_ring.build(4)
    x = mutual_exclusion.build(3)
    b = barrier.build(3)
    e = leader_election.build((3, 1, 2))
    return _memory_access_cases() + [
        ("tmr/tmr", t.tmr, t.faults, t.spec),
        ("tmr/dr_ir", t.dr_ir, t.faults, t.spec),
        ("token_ring", r.ring, r.faults, r.spec),
        ("mutual_exclusion", x.tolerant, x.faults, x.spec),
        ("barrier", b.tolerant, b.faults, b.spec),
        ("leader_election", e.program, e.faults, e.spec),
    ]


def _byzantine_cases():
    from repro.programs import byzantine

    b = byzantine.build()
    return [
        ("byzantine/failsafe", b.failsafe, b.faults, b.spec, b.span),
        ("byzantine/masking", b.masking, b.faults, b.spec, b.span),
    ]


_SMALL = _small_cases()
_BYZ = _byzantine_cases()


@pytest.mark.parametrize(
    "program,faults,spec",
    [case[1:] for case in _SMALL],
    ids=[case[0] for case in _SMALL],
)
class TestSmallScenarioParity:
    def test_largest_invariant(self, program, faults, spec):
        expected = _oracle_largest_invariant(program, spec)
        predicate = largest_invariant_for_safety(program, spec)
        computed = {s for s in program.states() if predicate(s)}
        assert computed == expected

    def test_fault_unsafe_region(self, program, faults, spec):
        states = list(program.states())
        expected = _oracle_fault_unsafe(faults, spec, states)
        computed = fault_unsafe_region(faults, spec, states)
        assert computed == expected

    def test_liveness_violating_states(self, program, faults, spec):
        leads_tos = [
            c for c in spec.liveness_part().components
            if isinstance(c, LeadsTo)
        ]
        if not leads_tos:
            pytest.skip("scenario has no leads-to component")
        ts = TransitionSystem(
            program,
            list(program.states()),
            fault_actions=list(faults.actions),
        )
        for component in leads_tos:
            expected = _oracle_liveness_violating(
                ts, component.source, component.target
            )
            computed = liveness_violating_states(
                ts, component.source, component.target
            )
            assert set(computed) == expected


@pytest.mark.parametrize(
    "program,faults,spec,span",
    [case[1:] for case in _BYZ],
    ids=[case[0] for case in _BYZ],
)
class TestByzantineParity:
    # The 23,328-state product space: too large for the quadratic
    # invariant oracle, but the worklist oracles stay linear enough.

    def test_fault_unsafe_region(self, program, faults, spec, span):
        states = list(program.states())
        expected = _oracle_fault_unsafe(faults, spec, states)
        computed = fault_unsafe_region(faults, spec, states)
        assert computed == expected

    def test_liveness_violating_states(self, program, faults, spec, span):
        ts = faults.system(program, span)
        component = next(
            c for c in spec.liveness_part().components
            if isinstance(c, LeadsTo)
        )
        expected = _oracle_liveness_violating(
            ts, component.source, component.target
        )
        computed = liveness_violating_states(
            ts, component.source, component.target
        )
        assert set(computed) == expected
