"""Tests for the reusable component framework."""

import pytest

from repro.components import (
    acceptance_test,
    checkpoint_rollback,
    comparator,
    majority_voter,
    recovery_block,
    watchdog,
)
from repro.core import BOTTOM, Variable
from repro.core.state import State


class TestComparator:
    def test_verifies(self):
        instance = comparator(Variable("a", [0, 1]), Variable("b", [0, 1]))
        assert instance.kind == "detector"
        assert instance.verify()

    def test_flag_tracks_agreement(self):
        instance = comparator(Variable("a", [0, 1]), Variable("b", [0, 1]))
        raise_action = instance.program.action("eq_raise")
        assert raise_action.enabled(State(a=1, b=1, eq=False))
        assert not raise_action.enabled(State(a=1, b=0, eq=False))

    def test_custom_flag_name(self):
        instance = comparator(
            Variable("a", [0, 1]), Variable("b", [0, 1]), flag_name="match"
        )
        assert "match" in [v.name for v in instance.program.variables]


class TestAcceptanceTest:
    def test_verifies(self):
        instance = acceptance_test(
            [Variable("x", [0, 1, 2])], lambda x: x < 2, test_name="x<2"
        )
        assert instance.verify()

    def test_multi_variable_test(self):
        instance = acceptance_test(
            [Variable("x", [0, 1]), Variable("y", [0, 1])],
            lambda x, y: x == y,
            test_name="x=y",
        )
        assert instance.verify()


class TestWatchdog:
    def test_verifies(self):
        assert watchdog(limit=2).verify()

    def test_suspects_only_at_limit(self):
        instance = watchdog(limit=2)
        suspect = instance.program.action("wd_suspect")
        assert not suspect.enabled(
            State(alive=False, missed=1, suspect=False)
        )
        assert suspect.enabled(State(alive=False, missed=2, suspect=False))

    def test_heartbeat_resets(self):
        instance = watchdog(limit=2)
        consume = instance.program.action("wd_consume")
        (after,) = consume.successors(State(alive=True, missed=2, suspect=True))
        assert after["missed"] == 0 and not after["suspect"]

    def test_invalid_limit(self):
        with pytest.raises(Exception):
            watchdog(limit=0).verify().expect()


class TestMajorityVoter:
    def inputs(self):
        return [Variable(f"i{k}", [0, 1]) for k in range(3)]

    def test_verifies(self):
        instance = majority_voter(
            self.inputs(), Variable("o", [BOTTOM, 0, 1]), good_value=1
        )
        assert instance.kind == "corrector"
        assert instance.verify()

    def test_even_inputs_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            majority_voter(
                [Variable("a", [0, 1]), Variable("b", [0, 1])],
                Variable("o", [BOTTOM, 0, 1]),
                good_value=1,
            )

    def test_votes_majority_value(self):
        instance = majority_voter(
            self.inputs(), Variable("o", [BOTTOM, 0, 1]), good_value=1
        )
        state = State(i0=1, i1=1, i2=0, o=BOTTOM)
        outcomes = {
            t["o"]
            for action in instance.program.actions
            for t in action.successors(state)
        }
        assert outcomes == {1}, "only the confirmed value can be voted"


class TestCheckpointRollback:
    def test_verifies(self):
        instance = checkpoint_rollback(Variable("x", [0, 1, 2]), lambda v: v != 2)
        assert instance.verify()

    def test_rollback_restores_checkpoint(self):
        instance = checkpoint_rollback(Variable("x", [0, 1, 2]), lambda v: v != 2)
        rollback = instance.program.action("rollback")
        (after,) = rollback.successors(State(x=2, chk=1))
        assert after["x"] == 1

    def test_no_good_value_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_rollback(Variable("x", [2]), lambda v: v != 2)


class TestRecoveryBlock:
    def test_verifies_when_alternate_is_acceptable(self):
        instance = recovery_block(
            Variable("res", [BOTTOM, 0, 1]),
            primary_value=0, alternate_value=1,
            acceptable=lambda v: v == 1,
        )
        assert instance.verify()

    def test_broken_alternate_fails_verification(self):
        instance = recovery_block(
            Variable("res", [BOTTOM, 0, 1]),
            primary_value=0, alternate_value=0,
            acceptable=lambda v: v == 1,
        )
        assert not instance.verify(), (
            "an alternate that fails its own acceptance test cannot correct"
        )

    def test_primary_path_short_circuits(self):
        """With an acceptable primary and a broken alternate, the block
        corrects only along the primary path: verification from TRUE
        fails (the alternate can loop on its bad value forever), but it
        is a corrector from the states the alternate never reaches."""
        from repro.core import Predicate, is_corrector

        instance = recovery_block(
            Variable("res", [BOTTOM, 0, 1]),
            primary_value=1, alternate_value=0,
            acceptable=lambda v: v == 1,
        )
        assert not instance.verify()
        alternate = instance.program.action("alternate")
        assert not alternate.enabled(State(res=1))
        primary_only = Predicate(lambda s: s["res"] != 0, "res≠0")
        assert is_corrector(
            instance.program, instance.witness, instance.claim, primary_only
        )


class TestComponentInstance:
    def test_unknown_kind_rejected(self):
        instance = comparator(Variable("a", [0, 1]), Variable("b", [0, 1]))
        broken = type(instance)(
            kind="mystery",
            program=instance.program,
            witness=instance.witness,
            claim=instance.claim,
            from_=instance.from_,
        )
        with pytest.raises(ValueError, match="unknown component kind"):
            broken.verify()
