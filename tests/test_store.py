"""Tests for the persistent certificate store (:mod:`repro.store`).

Covers the acceptance matrix of the store PR:

- round-trip parity: ``repro verify --all`` served warm from a store is
  bit-identical to a cold run and to a store-less run;
- a second warm run is answered entirely from the store (zero misses,
  verdict replays observed);
- content keys are sensitive to every semantic ingredient (guards,
  effects, names, frames, domains, spec predicates, symmetry flag);
- frame-aware incremental reuse: a frame-disjoint single-action edit
  transfers the passing verdict without recomputing, an interfering
  edit recomputes, and both agree with fresh store-less verdicts;
- ``clear_all_caches`` closes store handles but keeps the store active;
- the exploration LRU keys on the resolved engine, so a columnar-built
  system is never served to the interpreted oracle;
- ``repro serve`` round-trips artifacts to a ``RemoteStore`` client.
"""

import asyncio
import io
import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.core import exploration
from repro.core import kernels
from repro.core.action import Action, assign
from repro.core.predicate import TRUE, Predicate, var_eq, var_in
from repro.core.program import Program
from repro.core.refinement import refines_spec
from repro.core.specification import invariant_spec
from repro.core.state import Variable
from repro.store import backend, certificates, keys
from repro.store.backend import MemoryStore, RemoteStore, SQLiteStore
from repro.store.serve import StoreServer


@pytest.fixture(autouse=True)
def _isolated_store():
    """Never leak an active store (or its counters) into other tests."""
    backend.set_active_store(None)
    backend.reset_stats()
    yield
    backend.set_active_store(None)
    backend.reset_stats()
    exploration.clear_all_caches()


def framed_program(b_limit: int = 2, b_touches_a: bool = False) -> Program:
    """Two independent counters with declared frames.

    ``a`` counts 0..2 inside a 0..3 domain (so ``a <= 2`` genuinely
    reads ``a``); ``b`` counts up to ``b_limit``.  With
    ``b_touches_a=True`` the ``b`` action also (idly) writes ``a``,
    making its frame interfere with the spec.
    """
    variables = [Variable("a", [0, 1, 2, 3]), Variable("b", [0, 1, 2])]
    inc_a = Action(
        "incA",
        Predicate(lambda s: s["a"] < 2, "a<2"),
        assign(a=lambda s: s["a"] + 1),
        reads=["a"],
        writes=["a"],
    )
    if b_touches_a:
        inc_b = Action(
            "incB",
            Predicate(lambda s, lim=b_limit: s["b"] < lim, f"b<{b_limit}"),
            assign(b=lambda s: s["b"] + 1, a=lambda s: s["a"]),
            reads=["a", "b"],
            writes=["a", "b"],
        )
    else:
        inc_b = Action(
            "incB",
            Predicate(lambda s, lim=b_limit: s["b"] < lim, f"b<{b_limit}"),
            assign(b=lambda s: s["b"] + 1),
            reads=["b"],
            writes=["b"],
        )
    return Program(variables, [inc_a, inc_b], name="framed")


SPEC = invariant_spec(var_in("a", [0, 1, 2]))
#: closed in framed_program (incA caps at a=2) and genuinely reads "a"
FROM = var_in("a", [0, 1, 2])


class TestVerifyParity:
    def _verify_all(self, store=None):
        out = io.StringIO()
        argv = ["verify", "--all"] + ([] if store is None else ["--store", store])
        assert main(argv, out=out) == 0
        lines = out.getvalue().splitlines()
        return [line for line in lines if not line.startswith("store:")]

    def test_cold_warm_and_storeless_outputs_identical(self, tmp_path):
        spec = str(tmp_path / "certs.sqlite")
        baseline = self._verify_all()

        exploration.clear_all_caches()
        cold = self._verify_all(store=spec)
        assert cold == baseline

        exploration.clear_all_caches()
        backend.reset_stats()
        warm = self._verify_all(store=spec)
        assert warm == baseline

        stats = backend.stats()
        assert stats["misses"] == 0
        assert stats.get("verdict_hits", 0) > 0
        assert stats["hits"] > 0


class TestKeySensitivity:
    def test_program_material_tracks_every_ingredient(self):
        base = framed_program()
        digests = {keys.digest("program", keys.program_material(p)) for p in (
            base,
            framed_program(b_limit=1),          # guard constant
            framed_program(b_touches_a=True),   # effect + frames
            Program(list(base.variables), list(base.actions), name="other"),
        )}
        assert len(digests) == 4

    def test_frame_declaration_changes_action_key(self):
        guard = Predicate(lambda s: s["b"] < 2, "b<2")
        framed = Action("incB", guard, assign(b=lambda s: s["b"] + 1),
                        reads=["b"], writes=["b"])
        bare = Action("incB", guard, assign(b=lambda s: s["b"] + 1))
        assert keys.action_material(framed) != keys.action_material(bare)

    def test_domain_changes_program_key(self):
        narrow = Program([Variable("a", [0, 1])], [], name="p")
        wide = Program([Variable("a", [0, 1, 2])], [], name="p")
        assert keys.program_material(narrow) != keys.program_material(wide)

    def test_spec_material_tracks_predicates(self):
        assert keys.spec_material(invariant_spec(var_eq("a", 0))) != \
            keys.spec_material(invariant_spec(var_eq("a", 1)))

    def test_certificate_key_tracks_symmetry_flag(self):
        program = framed_program()
        plain = certificates.certificate_key(
            "t", program, None, SPEC, None, FROM, symmetric=False)
        quotient = certificates.certificate_key(
            "t", program, None, SPEC, None, FROM, symmetric=True)
        assert plain != quotient


class TestIncrementalReuse:
    def _fresh_verdict(self, program):
        backend.set_active_store(None)
        exploration.clear_all_caches()
        return refines_spec(program, SPEC, FROM)

    def test_frame_disjoint_edit_reuses_verdict(self, tmp_path):
        backend.set_active_store(str(tmp_path / "inc.sqlite"))
        original = refines_spec(framed_program(), SPEC, FROM)
        assert original.ok

        edited = framed_program(b_limit=1)  # edit touches only "b"
        backend.reset_stats()
        reused = refines_spec(edited, SPEC, FROM)
        stats = backend.stats()
        assert stats.get("obligations_reused", 0) >= 1
        assert reused.ok

        assert self._fresh_verdict(edited).ok == reused.ok

    def test_interfering_edit_recomputes(self, tmp_path):
        backend.set_active_store(str(tmp_path / "inc.sqlite"))
        assert refines_spec(framed_program(), SPEC, FROM).ok

        edited = framed_program(b_touches_a=True)  # frame now covers "a"
        backend.reset_stats()
        recomputed = refines_spec(edited, SPEC, FROM)
        assert backend.stats().get("obligations_reused", 0) == 0
        assert recomputed.ok

        assert self._fresh_verdict(edited).ok == recomputed.ok

    def test_failing_verdicts_never_transfer(self, tmp_path):
        backend.set_active_store(str(tmp_path / "inc.sqlite"))
        bad_spec = invariant_spec(var_in("a", [0, 1]))  # violated at a=2
        failing = refines_spec(framed_program(), bad_spec, FROM)
        assert not failing.ok

        edited = framed_program(b_limit=1)
        backend.reset_stats()
        verdict = refines_spec(edited, bad_spec, FROM)
        assert backend.stats().get("obligations_reused", 0) == 0
        assert not verdict.ok

    def test_exact_replay_on_identical_rerun(self, tmp_path):
        backend.set_active_store(str(tmp_path / "inc.sqlite"))
        program = framed_program()
        first = refines_spec(program, SPEC, FROM)

        exploration.clear_all_caches()
        backend.reset_stats()
        again = refines_spec(framed_program(), SPEC, FROM)
        stats = backend.stats()
        assert stats.get("obligation_hits", 0) >= 1
        assert again.ok == first.ok
        assert str(again) == str(first)


class TestCacheReset:
    def test_clear_all_caches_closes_handle_keeps_store_active(self, tmp_path):
        store = SQLiteStore(tmp_path / "handles.sqlite")
        backend.set_active_store(store)
        store.get("missing")
        assert store.is_open

        exploration.clear_all_caches()
        assert not store.is_open
        assert backend.active_store() is store

        store.get("missing")  # transparently reopens
        assert store.is_open

    def test_set_active_store_none_deactivates(self, tmp_path):
        backend.set_active_store(str(tmp_path / "x.sqlite"))
        assert backend.active_store() is not None
        backend.set_active_store(None)
        assert backend.active_store() is None

    def test_active_spec_round_trips(self, tmp_path):
        path = str(tmp_path / "spec.sqlite")
        backend.set_active_store(path)
        assert backend.active_spec() == path
        backend.set_active_store(MemoryStore())
        assert backend.active_spec() is None  # process-local, no spec


class TestEngineCacheKey:
    def test_interpreted_oracle_never_served_columnar_system(self):
        program = framed_program()
        starts = list(program.states())
        exploration.clear_system_cache()
        compiled = exploration.explored_system(program, starts)
        memoized = exploration.explored_system(program, starts)
        assert memoized is compiled

        kernels.set_backend("interpreted")
        try:
            oracle = exploration.explored_system(program, starts)
            assert oracle is not compiled
        finally:
            kernels.set_backend("auto")
        assert oracle.states == compiled.states


class TestServe:
    def test_remote_store_round_trip(self):
        backing = MemoryStore()
        server = StoreServer(backing, port=0)
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            ready.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:
            client = RemoteStore(f"http://127.0.0.1:{server.port}")
            assert client.get("deadbeef") is None  # 404 -> miss, not error
            client.put("deadbeef", b"artifact-bytes")
            assert client.get("deadbeef") == b"artifact-bytes"
            assert backing._data["deadbeef"] == b"artifact-bytes"
            assert client.errors == 0 and not client.dormant

            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/stats", timeout=5
            ) as response:
                stats = json.loads(response.read())
            assert stats["puts"] == 1 and stats["requests"] >= 3
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            # cancel the parked keep-alive handler before closing, or
            # its coroutine is garbage-collected mid-await
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def test_dormancy_after_transport_failures(self):
        client = RemoteStore("http://127.0.0.1:1", timeout=0.2, max_failures=2)
        assert client.get("aa") is None
        assert client.get("aa") is None
        assert client.dormant
        client.put("aa", b"x")  # swallowed, no exception
        assert client.get("aa") is None

    def test_store_from_spec_dispatch(self, tmp_path):
        assert isinstance(backend.store_from_spec(":memory:"), MemoryStore)
        assert isinstance(
            backend.store_from_spec(str(tmp_path / "a.sqlite")), SQLiteStore)
        assert isinstance(
            backend.store_from_spec("http://localhost:7357"), RemoteStore)
        file_store = backend.store_from_spec(str(tmp_path / "dir"))
        assert type(file_store).__name__ == "FileStore"
