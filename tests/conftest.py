"""Shared fixtures: the paper's program families, built once per session.

Model construction is cheap but model *checking* is not; the fixtures
cache the built models so every test file exercises the same artifacts
the benchmarks and examples use.
"""

from __future__ import annotations

import pytest

from repro.programs import (
    byzantine,
    distributed_reset,
    leader_election,
    memory_access,
    mutual_exclusion,
    termination_detection,
    token_ring,
    tmr,
)


@pytest.fixture(scope="session")
def memory():
    return memory_access.build()


@pytest.fixture(scope="session")
def tmr_model():
    return tmr.build()


@pytest.fixture(scope="session")
def byz():
    return byzantine.build()


@pytest.fixture(scope="session")
def nmr5():
    return tmr.build_nmr(5)


@pytest.fixture(scope="session")
def ring():
    return token_ring.build(4)


@pytest.fixture(scope="session")
def mutex():
    return mutual_exclusion.build(3)


@pytest.fixture(scope="session")
def election():
    return leader_election.build((3, 1, 2))


@pytest.fixture(scope="session")
def termination():
    return termination_detection.build(3)


@pytest.fixture(scope="session")
def reset():
    return distributed_reset.build(3, 2)
