"""Tests for fail-safe / nonmasking / masking synthesis (Question 2)."""

import pytest

from repro import synthesis
from repro.core import (
    Action,
    FaultClass,
    Predicate,
    Program,
    TRUE,
    Variable,
    assign,
)
from repro.core.state import State
from repro.synthesis.weakest import fault_unsafe_region, safe_action_predicate


class TestFaultUnsafeRegion:
    def test_backward_closure_over_fault_edges(self, memory):
        states = list(memory.p.states())
        region = fault_unsafe_region(
            memory.fault_anytime, memory.spec, states
        )
        # no state is *itself* bad (safety is transition-level) and the
        # page fault alone never writes data — the region is empty.
        assert region == set()

    def test_seeded_by_bad_fault_transitions(self):
        spec_monotone = __import__(
            "repro.core.specification", fromlist=["Spec", "TransitionInvariant"]
        )
        from repro.core.specification import Spec, TransitionInvariant

        spec = Spec(
            [TransitionInvariant(lambda s, t: t["x"] >= s["x"], "monotone")],
            name="monotone",
        )
        fault = FaultClass(
            [Action("zap", Predicate(lambda s: s["x"] == 2, "x=2"), assign(x=0))],
            name="zap",
        )
        states = [State(x=v) for v in (0, 1, 2)]
        region = fault_unsafe_region(fault, spec, states)
        assert region == {State(x=2)}

    def test_multi_step_fault_escalation(self):
        from repro.core.specification import Spec, StateInvariant

        spec = Spec(
            [StateInvariant(Predicate(lambda s: s["x"] != 3, "x≠3"))], name="x≠3"
        )
        fault = FaultClass(
            [Action("bump", Predicate(lambda s: s["x"] in (1, 2)),
                    assign(x=lambda s: s["x"] + 1))],
            name="bump",
        )
        states = [State(x=v) for v in range(4)]
        region = fault_unsafe_region(fault, spec, states)
        assert region == {State(x=1), State(x=2), State(x=3)}, (
            "faults can chain 1 -> 2 -> 3"
        )


class TestAddFailsafe:
    def test_memory_example(self, memory):
        result = synthesis.add_failsafe(memory.p, memory.fault_anytime, memory.spec)
        assert result.verify(memory.fault_anytime, memory.spec)

    def test_synthesized_actions_are_restrictions(self, memory):
        result = synthesis.add_failsafe(memory.p, memory.fault_anytime, memory.spec)
        assert [a.name for a in result.program.actions] == [
            a.name for a in memory.p.actions
        ]
        # restricted guards are never weaker
        for original, restricted in zip(memory.p.actions, result.program.actions):
            for state in memory.p.states():
                if restricted.enabled(state):
                    assert original.enabled(state)

    def test_tmr_example(self, tmr_model):
        result = synthesis.add_failsafe(
            tmr_model.ir, tmr_model.faults, tmr_model.spec
        )
        assert result.verify(tmr_model.faults, tmr_model.spec)
        # the synthesized guard includes the paper's witness x=y ∨ x=z
        restricted = result.program.action("IR1")
        for state in tmr_model.ir.states():
            if restricted.enabled(state) and tmr_model.span(state):
                assert tmr_model.witness_dr(state)

    def test_unimplementable_spec_raises(self):
        from repro.core.specification import Spec, StateInvariant

        p = Program(
            [Variable("x", [0, 1])],
            [Action("set", TRUE, assign(x=1))],
            name="p",
        )
        spec = Spec(
            [StateInvariant(Predicate(lambda s: False, "false"))], name="impossible"
        )
        with pytest.raises(ValueError, match="empty"):
            synthesis.add_failsafe(p, FaultClass([], "none"), spec)


class TestResetCorrector:
    def test_targets_nearest_invariant_state(self, memory):
        corrector = synthesis.reset_corrector(memory.p, memory.S_pn, TRUE)
        bad = State(mem=__import__("repro").BOTTOM, data=1)
        (fixed,) = corrector.successors(bad)
        assert memory.S_pn(fixed)
        assert fixed["data"] == 1, "minimal change keeps data"

    def test_disabled_inside_invariant(self, memory):
        corrector = synthesis.reset_corrector(memory.p, memory.S_pn, TRUE)
        for state in memory.p.states():
            if memory.S_pn(state):
                assert not corrector.enabled(state)

    def test_empty_invariant_rejected(self, memory):
        with pytest.raises(ValueError, match="empty"):
            synthesis.reset_corrector(
                memory.p, Predicate(lambda s: False, "false"), TRUE
            )


class TestAddNonmasking:
    def test_generic_reset(self, memory):
        result = synthesis.add_nonmasking(
            memory.p, memory.fault_anytime, memory.S_pn, TRUE
        )
        assert result.verify(memory.fault_anytime, memory.spec)

    def test_user_supplied_corrector(self, memory):
        restore = Action(
            "restore",
            Predicate(lambda s: s["mem"] is __import__("repro").BOTTOM, "mem=⊥"),
            assign(mem=1),
        )
        result = synthesis.add_nonmasking(
            memory.p, memory.fault_anytime, memory.S_pn, TRUE,
            correctors=[restore],
        )
        assert result.verify(memory.fault_anytime, memory.spec)

    def test_interfering_corrector_rejected(self, memory):
        meddler = Action("meddle", TRUE, assign(data=0))
        with pytest.raises(ValueError, match="interferes"):
            synthesis.add_nonmasking(
                memory.p, memory.fault_anytime, memory.S_pn, TRUE,
                correctors=[meddler],
            )


class TestAddMasking:
    def test_memory_example(self, memory):
        result = synthesis.add_masking(memory.p, memory.fault_anytime, memory.spec)
        assert result.verify(memory.fault_anytime, memory.spec)

    def test_tmr_from_intolerant_ir(self, tmr_model):
        """The flagship synthesis claim of Section 6.1: masking TMR can
        be *calculated* from the bare intolerant program."""
        result = synthesis.add_masking(
            tmr_model.ir, tmr_model.faults, tmr_model.spec
        )
        assert result.verify(tmr_model.faults, tmr_model.spec)

    def test_correctors_pass_safety_filter(self, tmr_model):
        result = synthesis.add_masking(
            tmr_model.ir, tmr_model.faults, tmr_model.spec
        )
        from repro.core.invariants import _safety_checks

        state_checks, transition_checks = _safety_checks(
            tmr_model.spec.safety_part()
        )
        for corrector in result.correctors:
            for state in tmr_model.ir.states():
                for successor in corrector.successors(state):
                    assert all(c(state, successor) for c in transition_checks)
