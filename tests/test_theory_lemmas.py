"""Property-based validation of Lemmas 3.1, 3.2 and 5.1.

The lemmas quantify over all prefixes/suffixes and all fusion-closed
specifications; hypothesis generates random sequences over a small state
universe and random specifications from the representable class, and
each instance of the lemma's implication is checked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicate import Predicate, TRUE
from repro.core.specification import (
    LeadsTo,
    Spec,
    StateInvariant,
    TransitionInvariant,
)
from repro.core.state import State
from repro.theory.lemmas import lemma_3_1, lemma_3_2, lemma_5_1

VALUES = [0, 1, 2]
states = st.integers(min_value=0, max_value=2).map(lambda v: State(x=v))
sequences = st.lists(states, min_size=1, max_size=6)


def eq(v):
    return Predicate(lambda s, v=v: s["x"] == v, name=f"x={v}")


@st.composite
def safety_specs(draw):
    """A random conjunction of state and transition invariants."""
    components = []
    if draw(st.booleans()):
        forbidden = draw(st.sampled_from(VALUES))
        components.append(
            StateInvariant(~eq(forbidden), name=f"never x={forbidden}")
        )
    if draw(st.booleans()):
        src = draw(st.sampled_from(VALUES))
        dst = draw(st.sampled_from(VALUES))
        components.append(
            TransitionInvariant(
                lambda s, t, a=src, b=dst: not (s["x"] == a and t["x"] == b),
                name=f"no {src}->{dst} step",
            )
        )
    if not components:
        components.append(StateInvariant(TRUE))
    return Spec(components, name="random_safety")


@st.composite
def fusion_closed_specs(draw):
    """Safety plus at most one LeadsTo(true, ·) liveness component —
    the fusion-closed subclass (see repro.theory.lemmas docstring)."""
    spec = draw(safety_specs())
    if draw(st.booleans()):
        goal = draw(st.sampled_from(VALUES))
        spec = spec.conjoin(
            Spec([LeadsTo(TRUE, eq(goal))], name=f"eventually x={goal}")
        )
    return spec


@st.composite
def fused_pair(draw):
    """Two sequences sharing a fusion state."""
    prefix = draw(sequences)
    suffix_rest = draw(st.lists(states, min_size=0, max_size=5))
    suffix = [prefix[-1]] + suffix_rest
    return prefix, suffix


@settings(max_examples=300, deadline=None)
@given(spec=safety_specs(), pair=fused_pair())
def test_lemma_3_1(spec, pair):
    prefix, suffix = pair
    assert lemma_3_1(spec, prefix, suffix)


@settings(max_examples=300, deadline=None)
@given(spec=safety_specs(), prefix=sequences, successor=states)
def test_lemma_3_2(spec, prefix, successor):
    assert lemma_3_2(spec, prefix, successor)


@settings(max_examples=300, deadline=None)
@given(spec=fusion_closed_specs(), pair=fused_pair())
def test_lemma_5_1(spec, pair):
    prefix, suffix = pair
    assert lemma_5_1(spec, prefix, suffix)


class TestLemmaEdgeCases:
    def test_fusion_state_mismatch_rejected(self):
        spec = Spec([StateInvariant(TRUE)], name="t")
        import pytest

        with pytest.raises(ValueError, match="fusion state"):
            lemma_3_1(spec, [State(x=0)], [State(x=1)])

    def test_lemma_3_2_detects_transition_violation(self):
        """The 'iff' direction: a bad final transition is detected from
        the last two states alone, whatever the history."""
        spec = Spec(
            [TransitionInvariant(
                lambda s, t: not (s["x"] == 0 and t["x"] == 1), "no 0->1"
            )],
            name="no01",
        )
        long_prefix = [State(x=2), State(x=2), State(x=0)]
        assert spec.maintains_prefix(long_prefix)
        assert not spec.maintains_prefix(long_prefix + [State(x=1)])
        assert not spec.maintains_prefix([State(x=0), State(x=1)])
        assert lemma_3_2(spec, long_prefix, State(x=1))
