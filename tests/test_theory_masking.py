"""Section 5 theorems, validated mechanically."""

from repro import theory
from repro.core import Predicate


class TestProjectionClosure:
    def test_weakens_to_base_variables(self, memory):
        projected = theory.projection_closure(memory.S_pm, memory.pm, memory.pn)
        # S_pm constrains Z1; S_p(S_pm) must not (it ranges over pn's vars)
        for state in memory.pm.states():
            if memory.S_pm(state):
                assert projected(state), "S ⇒ S_p"
        # a state differing from an S-state only in Z1 satisfies S_p
        witness = next(s for s in memory.pm.states() if memory.S_pm(s) and s["Z1"])
        flipped = witness.assign(Z1=False)
        assert projected(flipped)

    def test_depends_only_on_base_projection(self, memory):
        projected = theory.projection_closure(memory.S_pm, memory.pm, memory.pn)
        base_vars = set(memory.pn.variable_names)
        by_projection = {}
        for state in memory.pm.states():
            key = state.project(base_vars)
            value = projected(state)
            assert by_projection.setdefault(key, value) == value


class TestTheorem52:
    def test_on_pm(self, memory):
        assert theory.theorem_5_2(memory.pm, memory.spec, memory.S_pm, memory.T_pm)

    def test_pn_fails_the_safety_premise(self, memory):
        """pn from TRUE can write wrong data while recovering, so the
        fail-safe premise of Theorem 5.2 fails — pn is nonmasking, not
        masking, exactly the paper's classification."""
        from repro.core.predicate import TRUE

        result = theory.theorem_5_2(memory.pn, memory.spec, memory.S_pn, TRUE)
        assert not result
        assert "premises" in result.description

    def test_pf_fails_the_convergence_premise(self, memory):
        """pf deadlocks outside its invariant, so the nonmasking
        premise of Theorem 5.2 fails."""
        result = theory.theorem_5_2(
            memory.pf, memory.spec, memory.S_pf, memory.T_pf
        )
        assert not result


class TestTheorem53:
    def test_on_masking_memory(self, memory):
        """Theorem 5.3 uses a single invariant for base and refined
        program, so it must be a predicate over the base's variables:
        S_pn (= X1) works for the (pm, pn) pair."""
        assert theory.theorem_5_3(
            memory.pm, memory.pn, memory.spec, memory.S_pn, memory.T_pm
        )


class TestLemma54:
    def test_on_masking_memory(self, memory):
        assert theory.lemma_5_4(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm, span=memory.T_pm,
        )


class TestTheorem55:
    def test_on_masking_memory(self, memory):
        assert theory.theorem_5_5(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm,
            span=memory.T_pm, faults=memory.fault_before_witness,
        )

    def test_premise_failure_on_nonmasking_program(self, memory):
        """pn is not masking tolerant (safety dies transiently): the
        Theorem 5.5 premises must fail for it."""
        result = theory.theorem_5_5(
            memory.pn, memory.p, memory.spec,
            invariant=memory.S_p, restored=memory.S_pn,
            span=memory.T_pn, faults=memory.fault_anytime,
        )
        assert not result
