"""Intruder modelling (SIEFAST, Section 7): message tampering and an
authentication detector against it.

The scenario: a sender transmits ``(value, checksum)`` pairs; an
intruder rewrites values in transit.  The receiver's *acceptance test*
(a detector from the component library's family) checks the checksum:
with the detector, tampered messages are rejected and the application
predicate "accepted values are authentic" is fail-safe against the
intruder; without it, the predicate is violated.
"""

import pytest

from repro.sim import ChannelConfig, Network, SimProcess
from repro.sim.faults import TamperingIntruder


def checksum(value: int) -> int:
    return (value * 31 + 7) % 97


class Sender(SimProcess):
    def __init__(self, pid, receiver, count=10):
        super().__init__(pid)
        self.receiver = receiver
        self.count = count
        self.next_value = 0

    def on_start(self):
        self.set_timer("tick", 1.0)

    def on_timer(self, name):
        if self.next_value < self.count:
            value = self.next_value
            self.send(self.receiver, (value, checksum(value)))
            self.next_value += 1
            self.set_timer("tick", 1.0)


class Receiver(SimProcess):
    def __init__(self, pid, authenticate=True):
        super().__init__(pid)
        self.authenticate = authenticate
        self.accepted = []
        self.rejected = 0

    def on_message(self, sender, message):
        value, tag = message
        if self.authenticate and tag != checksum(value):
            self.rejected += 1
            return
        self.accepted.append(value)


def run(authenticate: bool, tamper: bool, seed=0):
    network = Network(seed=seed, default_channel=ChannelConfig(delay=0.1))
    network.add_process(Sender("s", receiver="r"))
    receiver = network.add_process(Receiver("r", authenticate=authenticate))
    if tamper:
        TamperingIntruder(
            start=2.5, duration=4.0, source="s", destination="r",
            transform=lambda message: (message[0] + 50, message[1]),
        ).arm(network)
    network.run(until=30)
    return network, receiver


class TestTampering:
    def test_no_intruder_all_accepted(self):
        _, receiver = run(authenticate=True, tamper=False)
        assert receiver.accepted == list(range(10))
        assert receiver.rejected == 0

    def test_intruder_without_detector_pollutes(self):
        _, receiver = run(authenticate=False, tamper=True)
        assert any(v >= 50 for v in receiver.accepted), (
            "tampered values reach the application"
        )

    def test_detector_rejects_tampered_messages(self):
        _, receiver = run(authenticate=True, tamper=True)
        assert all(v < 50 for v in receiver.accepted)
        assert receiver.rejected > 0

    def test_tamper_events_traced(self):
        network, _ = run(authenticate=True, tamper=True)
        assert network.events("tamper"), "tampering must appear in the trace"

    def test_intruder_window_bounded(self):
        network, receiver = run(authenticate=True, tamper=True)
        tampered_times = [e.time for e in network.events("tamper")]
        assert all(2.5 <= t < 6.5 for t in tampered_times)

    def test_tamperer_removal(self):
        network = Network(seed=0)
        network.add_process(Sender("s", receiver="r"))
        network.add_process(Receiver("r"))
        network.set_tamperer("s", "r", lambda m: m)
        network.set_tamperer("s", "r", None)
        network.run(until=5)
        assert not network.events("tamper")

    def test_identity_transform_not_traced(self):
        network = Network(seed=0)
        network.add_process(Sender("s", receiver="r"))
        network.add_process(Receiver("r"))
        network.set_tamperer("s", "r", lambda m: m)
        network.run(until=5)
        assert not network.events("tamper")
