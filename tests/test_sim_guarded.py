"""Tests for running guarded-command programs under schedulers."""

import random

import pytest

from repro.core import Action, Predicate, Program, State, TRUE, Variable, assign
from repro.sim import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    convergence_steps,
    simulate,
    worst_case_convergence_steps,
)


def two_phase():
    """x counts to 2 via two actions, one per phase."""
    return Program(
        [Variable("x", [0, 1, 2])],
        [
            Action("a", Predicate(lambda s: s["x"] == 0), assign(x=1)),
            Action("b", Predicate(lambda s: s["x"] == 1), assign(x=2)),
        ],
        name="two_phase",
    )


DONE = Predicate(lambda s: s["x"] == 2, "x=2")


class TestSimulate:
    def test_runs_to_deadlock(self):
        trace = simulate(two_phase(), State(x=0), RandomScheduler(0), steps=10)
        assert trace[-1] == State(x=2)
        assert len(trace) == 3

    def test_step_budget(self):
        spin = Program(
            [Variable("x", [0, 1])],
            [Action("flip", TRUE, assign(x=lambda s: 1 - s["x"]))],
            name="spin",
        )
        trace = simulate(spin, State(x=0), RandomScheduler(0), steps=7)
        assert len(trace) == 8

    def test_fault_injection_at_steps(self, ring):
        start = next(s for s in ring.ring.states() if ring.invariant(s))
        trace = simulate(
            ring.ring, start, RandomScheduler(1), steps=20,
            faults=ring.faults, fault_times=[0],
        )
        assert len(trace) > 1


class TestSchedulers:
    def test_round_robin_is_fair(self):
        """Round-robin drives the two-phase chain in bounded steps."""
        steps = convergence_steps(
            two_phase(), State(x=0), DONE, RoundRobinScheduler()
        )
        assert steps == 2

    def test_random_converges(self):
        steps = convergence_steps(
            two_phase(), State(x=0), DONE, RandomScheduler(3)
        )
        assert steps == 2

    def test_adversarial_maximizes_distance(self, ring):
        start = next(s for s in ring.ring.states() if not ring.invariant(s))
        adversary = AdversarialScheduler(ring.ring, ring.invariant, start)
        random_steps = convergence_steps(
            ring.ring, start, ring.invariant, RandomScheduler(0)
        )
        adversarial_steps = convergence_steps(
            ring.ring, start, ring.invariant, adversary
        )
        assert adversarial_steps is not None
        assert adversarial_steps >= random_steps

    def test_convergence_zero_if_already_there(self):
        assert convergence_steps(
            two_phase(), State(x=2), DONE, RandomScheduler(0)
        ) == 0

    def test_deadlock_without_target_is_none(self):
        bad = Predicate(lambda s: False, "never")
        assert convergence_steps(
            two_phase(), State(x=0), bad, RandomScheduler(0)
        ) is None


class TestWorstCase:
    def test_exact_on_chain(self):
        assert worst_case_convergence_steps(
            two_phase(), [State(x=0)], DONE
        ) == 2

    def test_maximizes_over_starts(self):
        assert worst_case_convergence_steps(
            two_phase(), [State(x=0), State(x=1), State(x=2)], DONE
        ) == 2

    def test_cycle_raises(self):
        spin = Program(
            [Variable("x", [0, 1])],
            [Action("flip", TRUE, assign(x=lambda s: 1 - s["x"]))],
            name="spin",
        )
        with pytest.raises(ValueError, match="forever"):
            worst_case_convergence_steps(
                spin, [State(x=0)], Predicate(lambda s: False, "never")
            )

    def test_ring_bound_dominates_samples(self, ring):
        bound = worst_case_convergence_steps(
            ring.ring, ring.ring.states(), ring.invariant
        )
        rng = random.Random(0)
        states = list(ring.ring.states())
        for _ in range(20):
            start = rng.choice(states)
            steps = convergence_steps(
                ring.ring, start, ring.invariant, RandomScheduler(rng.random())
            )
            assert steps is not None and steps <= bound * 4, (
                "random schedules may wander but the demonic bound is a "
                "per-schedule maximum only for demonic play; sanity margin"
            )
