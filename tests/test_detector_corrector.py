"""Unit tests for the detector and corrector component specifications."""

from repro.core import (
    Action,
    FaultClass,
    Predicate,
    Program,
    TRUE,
    Variable,
    assign,
    corrects_spec,
    detects_spec,
    is_corrector,
    is_detector,
    is_failsafe_tolerant_corrector,
    is_failsafe_tolerant_detector,
    is_masking_tolerant_corrector,
    is_masking_tolerant_detector,
    is_nonmasking_tolerant_corrector,
    is_nonmasking_tolerant_detector,
)
from repro.core.faults import set_variable
from repro.core.state import State


def flag_detector():
    """Raise z when x is set; x is stable here."""
    return Program(
        [Variable("x", [False, True]), Variable("z", [False, True])],
        [
            Action(
                "raise_z",
                Predicate(lambda s: s["x"] and not s["z"], "x ∧ ¬z"),
                assign(z=True),
            )
        ],
        name="flag_detector",
    )


X = Predicate(lambda s: s["x"], name="x")
Z = Predicate(lambda s: s["z"], name="z")
U = Z.implies(X).rename("z⇒x")


class TestSpecShape:
    def test_detects_spec_components(self):
        spec = detects_spec(Z, X)
        kinds = sorted(c.kind for c in spec.components)
        assert kinds == ["liveness", "safety", "safety"]

    def test_corrects_spec_extends_detects(self):
        spec = corrects_spec(Z, X)
        assert len(spec.components) == 5
        assert len(spec.liveness_part().components) == 2


class TestDetector:
    def test_flag_detector_is_detector(self):
        assert is_detector(flag_detector(), Z, X, U)

    def test_safeness_violation_caught(self):
        eager = Program(
            [Variable("x", [False, True]), Variable("z", [False, True])],
            [Action("raise_always", Predicate(lambda s: not s["z"], "¬z"),
                    assign(z=True))],
            name="eager",
        )
        result = is_detector(eager, Z, X, U)
        assert not result, "witnesses X even when X is false"

    def test_progress_violation_caught(self):
        lazy = Program(
            [Variable("x", [False, True]), Variable("z", [False, True])],
            [],
            name="lazy",
        )
        result = is_detector(lazy, Z, X, U)
        assert not result, "never raises the witness"

    def test_stability_violation_caught(self):
        flaky = Program(
            [Variable("x", [False, True]), Variable("z", [False, True])],
            [
                Action("raise_z", Predicate(lambda s: s["x"] and not s["z"]),
                       assign(z=True)),
                Action("drop_z", Predicate(lambda s: s["x"] and s["z"]),
                       assign(z=False)),
            ],
            name="flaky",
        )
        assert not is_detector(flaky, Z, X, U)


class TestCorrector:
    def corrector(self):
        """Truthify x, then witness it."""
        return Program(
            [Variable("x", [False, True]), Variable("z", [False, True])],
            [
                Action("fix_x", Predicate(lambda s: not s["x"], "¬x"),
                       assign(x=True)),
                Action("raise_z", Predicate(lambda s: s["x"] and not s["z"]),
                       assign(z=True)),
            ],
            name="fixer",
        )

    def test_is_corrector(self):
        assert is_corrector(self.corrector(), Z, X, U)

    def test_convergence_violation_caught(self):
        stuck = flag_detector()  # detects but never corrects
        assert not is_corrector(stuck, Z, X, U)

    def test_witness_equals_correction_special_case(self):
        """Z = X reduces to Arora-Gouda closure-and-convergence
        (the paper's corrector remark)."""
        fixer = Program(
            [Variable("x", [False, True])],
            [Action("fix", Predicate(lambda s: not s["x"], "¬x"),
                    assign(x=True))],
            name="ag_fixer",
        )
        assert is_corrector(fixer, X, X, TRUE)


class TestTolerantComponents:
    def faults(self):
        return set_variable("x", False, name="knock_down_x")

    def test_nonmasking_tolerant_corrector(self):
        fixer = Program(
            [Variable("x", [False, True]), Variable("z", [False, True])],
            [
                Action("fix_x", Predicate(lambda s: not s["x"], "¬x"),
                       assign(x=True, z=False)),
                Action("raise_z", Predicate(lambda s: s["x"] and not s["z"]),
                       assign(z=True)),
            ],
            name="fixer",
        )
        fault = FaultClass(
            [Action("knock", Predicate(lambda s: s["x"], "x"),
                    assign(x=False, z=False))],
            name="knock",
        )
        assert is_nonmasking_tolerant_corrector(
            fixer, fault, Z, X, from_=U, span=U, recovered=U,
        )

    def test_failsafe_tolerant_detector(self, memory):
        """pf's own claim, via the detector interface (Figure 1)."""
        assert is_failsafe_tolerant_detector(
            memory.pf, memory.fault_before_witness,
            witness=memory.Z1, detection=memory.X1,
            from_=memory.S_pf, span=memory.T_pf,
        )

    def test_pf_is_even_masking_tolerant_detector(self, memory):
        """Subtle but correct: the page fault falsifies X1 itself, so
        the detector's Progress obligation is discharged by ¬X1 — pf's
        *detector spec* survives the fault fully even though pf is not
        masking tolerant to SPEC_mem (the data is never delivered)."""
        assert is_masking_tolerant_detector(
            memory.pf, memory.fault_before_witness,
            witness=memory.Z1, detection=memory.X1,
            from_=memory.S_pf, span=memory.T_pf,
        )

    def test_masking_tolerant_detector_negative(self):
        """A fault that knocks the witness down while the detection
        predicate stays true breaks Stability under faults: fail-safe
        and masking tolerance of the detector spec both fail."""
        detector = flag_detector()
        fault = FaultClass(
            [Action("drop_witness", Predicate(lambda s: s["z"], "z"),
                    assign(z=False))],
            name="drop_witness",
        )
        assert not is_masking_tolerant_detector(
            detector, fault, witness=Z, detection=X, from_=U, span=U,
        )
        assert not is_failsafe_tolerant_detector(
            detector, fault, witness=Z, detection=X, from_=U, span=U,
        )

    def test_theorem_5_5_caveat_on_mutex(self, mutex):
        """Theorem 5.5's caveat, live: the masking tolerant *system*
        contains a corrector that is only nonmasking F-tolerant — the
        token-loss fault itself falsifies the correction predicate
        (Convergence closure breaks on the fault edge), so the masking
        F-tolerant corrector claim must fail while the fault-free and
        nonmasking claims hold."""
        one_token = Predicate(
            lambda s, n=mutex.size: sum(
                1 for i in range(n) if s[f"tok{i}"]
            ) == 1,
            name="one token",
        )
        assert is_corrector(
            mutex.tolerant, one_token, one_token, mutex.span
        )
        assert is_nonmasking_tolerant_corrector(
            mutex.tolerant, mutex.faults,
            witness=one_token, correction=one_token,
            from_=mutex.span, span=mutex.span, recovered=mutex.invariant,
        )
        assert not is_masking_tolerant_corrector(
            mutex.tolerant, mutex.faults,
            witness=one_token, correction=one_token,
            from_=mutex.span, span=mutex.span,
        )

    def test_failsafe_tolerant_corrector(self):
        """A fault that jams the repair action (without touching the
        correction predicate) leaves the safety half of the corrector
        spec intact but kills Convergence: fail-safe tolerant corrector
        holds, masking tolerant corrector does not."""
        program = Program(
            [
                Variable("x", [False, True]),
                Variable("z", [False, True]),
                Variable("stuck", [False, True]),
            ],
            [
                Action(
                    "fix_x",
                    Predicate(lambda s: not s["x"] and not s["stuck"],
                              "¬x ∧ ¬stuck"),
                    assign(x=True),
                ),
                Action("raise_z", Predicate(lambda s: s["x"] and not s["z"]),
                       assign(z=True)),
            ],
            name="jammable_fixer",
        )
        jam = FaultClass(
            [Action("jam", Predicate(lambda s: not s["stuck"], "¬stuck"),
                    assign(stuck=True))],
            name="jam",
        )
        u = (Z.implies(X) & Predicate(lambda s: not s["stuck"], "¬stuck")).rename("U")
        span = Z.implies(X).rename("T")
        assert is_failsafe_tolerant_corrector(
            program, jam, witness=Z, correction=X, from_=u, span=span,
        )
        assert not is_masking_tolerant_corrector(
            program, jam, witness=Z, correction=X, from_=u, span=span,
        )

    def test_nonmasking_tolerant_detector(self, memory):
        """pm's detector recovers after faults stop: nonmasking
        tolerant detector of X1 with witness Z1."""
        assert is_nonmasking_tolerant_detector(
            memory.pm, memory.fault_before_witness,
            witness=memory.Z1, detection=memory.X1,
            from_=memory.S_pm, span=memory.T_pm, recovered=memory.S_pm,
        )
