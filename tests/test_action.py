"""Unit tests for guarded-command actions and statements."""

import pytest

from repro.core.action import Action, assign, choose, skip
from repro.core.predicate import Predicate, TRUE
from repro.core.state import State

INC = Action("inc", Predicate(lambda s: s["x"] < 2, "x<2"),
             assign(x=lambda s: s["x"] + 1))


class TestAssign:
    def test_constant(self):
        s = assign(x=5)(State(x=0))
        assert s["x"] == 5

    def test_callable_reads_pre_state(self):
        statement = assign(x=lambda s: s["y"], y=lambda s: s["x"])
        s = statement(State(x=1, y=2))
        assert s["x"] == 2 and s["y"] == 1, "swap must use initial values"

    def test_multiple_updates_atomic(self):
        s = assign(x=1, y=2)(State(x=0, y=0))
        assert (s["x"], s["y"]) == (1, 2)


class TestChoose:
    def test_alternatives_collected(self):
        statement = choose(assign(x=1), assign(x=2))
        successors = statement(State(x=0))
        assert {t["x"] for t in successors} == {1, 2}

    def test_nested_nondeterminism(self):
        inner = lambda s: (s.assign(x=1), s.assign(x=2))  # noqa: E731
        statement = choose(inner, assign(x=3))
        assert {t["x"] for t in statement(State(x=0))} == {1, 2, 3}


class TestSkip:
    def test_identity(self):
        s = State(x=1)
        assert skip()(s) == s


class TestAction:
    def test_enabled(self):
        assert INC.enabled(State(x=0))
        assert not INC.enabled(State(x=2))

    def test_successors_deterministic(self):
        assert INC.successors(State(x=0)) == (State(x=1),)

    def test_successors_disabled_is_empty(self):
        assert INC.successors(State(x=2)) == ()

    def test_successors_nondeterministic(self):
        flip = Action("flip", TRUE, choose(assign(x=0), assign(x=1)))
        assert set(flip.successors(State(x=7))) == {State(x=0), State(x=1)}

    def test_restrict_strengthens_guard(self):
        even = Predicate(lambda s: s["x"] % 2 == 0, "even")
        restricted = INC.restrict(even)
        assert restricted.enabled(State(x=0))
        assert not restricted.enabled(State(x=1)), "guard must include Z"
        assert restricted.name == INC.name, "∧-composition keeps the name"

    def test_renamed(self):
        assert INC.renamed("bump").name == "bump"

    def test_preserves_positive(self):
        low = Predicate(lambda s: s["x"] <= 2, "x≤2")
        states = [State(x=i) for i in range(4)]
        assert INC.preserves(low, states)

    def test_preserves_negative(self):
        low = Predicate(lambda s: s["x"] <= 1, "x≤1")
        states = [State(x=i) for i in range(3)]
        assert not INC.preserves(low, states)

    def test_repr_contains_guard(self):
        assert "x<2" in repr(INC)


class TestUniqueNames:
    def test_duplicate_action_names_rejected(self):
        from repro.core.program import Program
        from repro.core.state import Variable

        with pytest.raises(ValueError, match="duplicate action names"):
            Program(
                [Variable("x", [0])],
                [Action("a", TRUE, skip()), Action("a", TRUE, skip())],
            )
