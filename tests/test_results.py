"""Unit tests for check results and counterexamples."""

import pytest

from repro.core.results import CheckResult, Counterexample, all_of
from repro.core.state import State


class TestCheckResult:
    def test_truthiness(self):
        assert CheckResult.passed("ok")
        assert not CheckResult.failed("bad")

    def test_expect_passes_through(self):
        result = CheckResult.passed("ok")
        assert result.expect() is result

    def test_expect_raises_with_evidence(self):
        failing = CheckResult.failed(
            "claim",
            counterexample=Counterexample(
                kind="state", states=(State(x=1),), note="bad state"
            ),
        )
        with pytest.raises(AssertionError, match="bad state"):
            failing.expect()

    def test_str_includes_status(self):
        assert "[PASS]" in str(CheckResult.passed("hello"))
        assert "[FAIL]" in str(CheckResult.failed("hello"))


class TestCounterexample:
    def test_trace_rendering(self):
        ce = Counterexample(
            kind="trace",
            states=(State(x=0), State(x=1)),
            actions=("step",),
            note="boom",
        )
        text = str(ce)
        assert "boom" in text
        assert "--step-->" in text
        assert "[0]" in text and "[1]" in text

    def test_lasso_marks_loop_start(self):
        ce = Counterexample(
            kind="lasso",
            states=(State(x=0), State(x=1), State(x=0)),
            actions=("a", "b"),
            loop_index=1,
        )
        assert "↻" in str(ce)


class TestAllOf:
    def test_empty_passes(self):
        assert all_of([], description="nothing")

    def test_all_pass(self):
        combined = all_of(
            [CheckResult.passed("a"), CheckResult.passed("b")], description="both"
        )
        assert combined
        assert "a" in combined.details and "b" in combined.details

    def test_first_failure_reported(self):
        ce = Counterexample(kind="state", states=(State(x=0),))
        combined = all_of(
            [
                CheckResult.passed("a"),
                CheckResult.failed("b", counterexample=ce),
                CheckResult.failed("c"),
            ],
            description="combo",
        )
        assert not combined
        assert "b" in combined.description
        assert combined.counterexample is ce
