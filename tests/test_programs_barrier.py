"""Barrier computation — the first application in the paper's list."""

import pytest

from repro.core import (
    State,
    is_failsafe_tolerant,
    is_masking_tolerant,
    refines_spec,
)
from repro.programs import barrier
from repro.programs.barrier import ARRIVED, WORKING


@pytest.fixture(scope="module")
def model():
    return barrier.build(3)


class TestModel:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            barrier.build(1)

    def test_release_needs_all_flags(self, model):
        release = model.tolerant.action("release")
        partial = State(
            round=0,
            pc0=ARRIVED, a0=True,
            pc1=ARRIVED, a1=True,
            pc2=WORKING, a2=False,
        )
        assert not release.enabled(partial)

    def test_release_resets_everyone(self, model):
        release = model.tolerant.action("release")
        ready = State(
            round=0,
            pc0=ARRIVED, a0=True,
            pc1=ARRIVED, a1=True,
            pc2=ARRIVED, a2=True,
        )
        (after,) = release.successors(ready)
        assert after["round"] == 1
        assert all(after[f"pc{i}"] == WORKING for i in range(3))
        assert not any(after[f"a{i}"] for i in range(3))


class TestPaperClaims:
    def test_refines_spec_without_faults(self, model):
        assert refines_spec(model.intolerant, model.spec, model.invariant)

    def test_tolerant_is_masking(self, model):
        assert is_masking_tolerant(
            model.tolerant, model.faults, model.spec,
            model.invariant, model.span,
        )

    def test_intolerant_is_failsafe_only(self, model):
        assert is_failsafe_tolerant(
            model.intolerant, model.faults, model.spec,
            model.invariant, model.span,
        )
        assert not is_masking_tolerant(
            model.intolerant, model.faults, model.spec,
            model.invariant, model.span,
        ), "a lost flag blocks the intolerant barrier forever"

    def test_flags_never_overclaim(self, model):
        """The span (flags truthful) is closed under program and fault —
        the safety witness."""
        ts = model.faults.system(model.tolerant, model.span)
        assert ts.is_closed(model.span, include_faults=True)

    def test_corrector_is_locally_guarded(self, model):
        """The re-announce corrector fires exactly on the detection
        predicate 'arrived but flag lost'."""
        corrector = model.tolerant.action("re_announce0")
        inconsistent = State(
            round=0,
            pc0=ARRIVED, a0=False,
            pc1=WORKING, a1=False,
            pc2=WORKING, a2=False,
        )
        assert corrector.enabled(inconsistent)
        consistent = inconsistent.assign(a0=True)
        assert not corrector.enabled(consistent)

    @pytest.mark.parametrize("size", [2, 4])
    def test_scales(self, size):
        model = barrier.build(size)
        assert is_masking_tolerant(
            model.tolerant, model.faults, model.spec,
            model.invariant, model.span,
        )
