"""Tests for the command-line verifier."""

import io

import pytest

from repro.cli import CATALOGUE, main


class TestList:
    def test_lists_all_entries(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in CATALOGUE:
            assert name in text


class TestVerify:
    def test_single_entry_passes(self):
        out = io.StringIO()
        assert main(["verify", "leader_election"], out=out) == 0
        text = out.getvalue()
        assert "[PASS]" in text
        assert "all checks passed" in text

    def test_multiple_entries(self):
        out = io.StringIO()
        assert main(
            ["verify", "termination_detection", "distributed_reset"], out=out
        ) == 0

    def test_unknown_entry(self):
        out = io.StringIO()
        assert main(["verify", "nonsense"], out=out) == 2
        assert "unknown catalogue entry" in out.getvalue()

    def test_no_entries(self):
        out = io.StringIO()
        assert main(["verify"], out=out) == 2

    def test_catalogue_entries_build(self):
        """Every catalogue entry constructs and exposes checks."""
        for name, entry in CATALOGUE.items():
            description, checks = entry()
            assert description and checks, name


class TestCampaign:
    def test_list_scenarios(self):
        out = io.StringIO()
        assert main(["campaign", "--list"], out=out) == 0
        text = out.getvalue()
        for name in ("token_ring", "tmr", "byzantine", "memory_access"):
            assert name in text

    def test_no_scenario_lists_and_fails(self):
        out = io.StringIO()
        assert main(["campaign"], out=out) == 2
        assert "token_ring" in out.getvalue()

    def test_unknown_scenario(self):
        out = io.StringIO()
        assert main(["campaign", "nonsense"], out=out) == 2
        assert "unknown campaign scenario" in out.getvalue()

    def test_campaign_runs_and_reports(self, tmp_path):
        out = io.StringIO()
        jsonl = tmp_path / "out.jsonl"
        code = main(
            ["campaign", "token_ring", "--trials", "3", "--seed", "0",
             "--jsonl", str(jsonl)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "== campaign token_ring:" in text
        assert "detection latency:" in text
        assert "convergence time:" in text
        lines = jsonl.read_text().strip().splitlines()
        events = [__import__("json").loads(line) for line in lines]
        assert events[0]["event"] == "campaign_start"
        assert events[-1]["event"] == "campaign_end"
        assert sum(1 for e in events if e["event"] == "trial_end") == 3

    def test_budget_override(self):
        out = io.StringIO()
        assert main(
            ["campaign", "tmr", "--trials", "2", "--seed", "1",
             "--budget", "1"],
            out=out,
        ) == 0
        assert "masking-tolerant in 2/2 trials" in out.getvalue()
