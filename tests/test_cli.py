"""Tests for the command-line verifier."""

import io

import pytest

from repro.cli import CATALOGUE, main


class TestList:
    def test_lists_all_entries(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in CATALOGUE:
            assert name in text


class TestVerify:
    def test_single_entry_passes(self):
        out = io.StringIO()
        assert main(["verify", "leader_election"], out=out) == 0
        text = out.getvalue()
        assert "[PASS]" in text
        assert "all checks passed" in text

    def test_multiple_entries(self):
        out = io.StringIO()
        assert main(
            ["verify", "termination_detection", "distributed_reset"], out=out
        ) == 0

    def test_unknown_entry(self):
        out = io.StringIO()
        assert main(["verify", "nonsense"], out=out) == 2
        assert "unknown catalogue entry" in out.getvalue()

    def test_no_entries(self):
        out = io.StringIO()
        assert main(["verify"], out=out) == 2

    def test_catalogue_entries_build(self):
        """Every catalogue entry constructs and exposes checks."""
        for name, entry in CATALOGUE.items():
            description, checks = entry()
            assert description and checks, name
