"""Detector banks, syndrome algebra, and the corrector decoder."""

import pytest

from repro.core.predicate import Predicate, var_eq, var_in, var_ne
from repro.core.regions import StateIndex, universe_index
from repro.core.state import State, Variable, state_space
from repro.monitoring import (
    BankDetector,
    DetectorBank,
    SyndromeDecoder,
    distance,
    fired_indices,
    fired_names,
    format_syndrome,
    parse_syndrome,
    weight,
)


# ---------------------------------------------------------------------------
# syndrome algebra
# ---------------------------------------------------------------------------

class TestSyndromeAlgebra:
    def test_weight_and_distance(self):
        assert weight(0) == 0
        assert weight(0b1011) == 3
        assert distance(0b1011, 0b1011) == 0
        assert distance(0b1011, 0b0011) == 1
        assert distance(0, 0b111) == 3

    def test_fired_indices_ascending(self):
        assert list(fired_indices(0)) == []
        assert list(fired_indices(0b101001)) == [0, 3, 5]

    def test_fired_names(self):
        names = ("a", "b", "c")
        assert fired_names(0b101, names) == ["a", "c"]
        assert fired_names(0, names) == []

    def test_format_parse_round_trip(self):
        for syndrome in (0, 1, 0b10, 0b1101, 0b11111):
            text = format_syndrome(syndrome, 5)
            assert len(text) == 5
            assert parse_syndrome(text) == syndrome

    def test_format_puts_detector_zero_leftmost(self):
        assert format_syndrome(0b01, 2) == "10"
        assert format_syndrome(0b10, 2) == "01"

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            parse_syndrome("10x1")


# ---------------------------------------------------------------------------
# bank construction and evaluation
# ---------------------------------------------------------------------------

def toy_variables():
    return [Variable("x", (0, 1, 2)), Variable("y", (0, 1))]


def toy_bank():
    return DetectorBank(
        [
            BankDetector("x_hi", var_eq("x", 2), frozenset({"x"})),
            BankDetector("y_hot", var_eq("y", 1), frozenset({"y"})),
            BankDetector("skew", var_ne("x", 0), frozenset({"x"})),
        ],
        toy_variables(),
        name="toy",
    )


class TestDetectorBank:
    def test_accepts_predicates_and_pairs(self):
        bank = DetectorBank(
            [var_eq("x", 1), ("custom", var_eq("y", 0))],
            toy_variables(),
        )
        assert bank.m == 2
        assert bank.detector_names == ("x=1", "custom")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DetectorBank(
                [("d", var_eq("x", 0)), ("d", var_eq("y", 0))],
                toy_variables(),
            )

    def test_unknown_read_frame_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            DetectorBank(
                [BankDetector("d", var_eq("x", 0), frozenset({"z"}))],
                toy_variables(),
            )

    def test_syndrome_matches_per_detector_truth(self):
        bank = toy_bank()
        for state in state_space(toy_variables()):
            syndrome = bank.syndrome(state)
            for j, detector in enumerate(bank.detectors):
                assert bool(syndrome >> j & 1) == bool(
                    detector.predicate(state)
                )

    def test_syndrome_projects_wider_states(self):
        bank = toy_bank()
        wide = State(x=2, y=1, z=99)
        assert bank.syndrome(wide) == bank.syndrome(State(x=2, y=1))

    def test_dirty_mask_follows_read_frames(self):
        bank = toy_bank()
        assert bank.dirty_mask(["x"]) == 0b101   # x_hi and skew read x
        assert bank.dirty_mask(["y"]) == 0b010
        assert bank.dirty_mask(["x", "y"]) == 0b111
        assert bank.dirty_mask(["unknown"]) == 0

    def test_unknown_frame_means_reads_everything(self):
        bank = DetectorBank(
            [BankDetector("d", var_eq("x", 0), None)], toy_variables()
        )
        assert bank.dirty_mask(["x"]) == 1
        assert bank.dirty_mask(["y"]) == 1

    def test_update_syndrome_equals_full_recompute(self):
        bank = toy_bank()
        values = [0, 0]  # schema order is sorted: (x, y)
        assert list(bank.schema.names) == ["x", "y"]
        syndrome = bank.syndrome_of_values(values)
        import random

        rng = random.Random(7)
        for _ in range(200):
            name = rng.choice(["x", "y"])
            value = rng.choice((0, 1, 2) if name == "x" else (0, 1))
            position = bank.schema.index[name]
            if values[position] == value:
                continue
            values[position] = value
            syndrome = bank.update_syndrome(
                syndrome, values, bank.dirty_mask([name])
            )
            assert syndrome == bank.syndrome_of_values(values)

    def test_rows_and_syndrome_table_match_pointwise(self):
        bank = toy_bank()
        index = StateIndex(state_space(toy_variables()), _distinct=True)
        table = dict(bank.syndrome_table(index))
        assert len(table) == index.n
        for i, state in enumerate(index.states):
            assert table[i] == bank.syndrome(state)

    def test_syndrome_table_over_region(self):
        bank = toy_bank()
        index = StateIndex(state_space(toy_variables()), _distinct=True)
        region = index.region(var_eq("y", 1))
        table = bank.syndrome_table(index, region)
        assert {i for i, _ in table} == set(region.ids())

    def test_fire_counts_and_fired_union(self):
        bank = toy_bank()
        index = StateIndex(state_space(toy_variables()), _distinct=True)
        counts = bank.fire_counts(index)
        assert counts["x_hi"] == 2    # (x=2, y=0), (x=2, y=1)
        assert counts["y_hot"] == 3
        assert counts["skew"] == 4    # x in {1, 2}
        union = bank.fired_union(index)
        healthy = [s for s in index.states if bank.syndrome(s) == 0]
        assert len(union) == index.n - len(healthy)

    def test_fired_region_by_name(self):
        bank = toy_bank()
        index = StateIndex(state_space(toy_variables()), _distinct=True)
        region = bank.fired_region(index, "y_hot")
        assert all(s["y"] == 1 for s in region.states())
        with pytest.raises(KeyError):
            bank.fired_region(index, "nope")

    def test_with_inferred_reads(self):
        bank = DetectorBank(
            [
                BankDetector("x_hi", var_eq("x", 2), None),
                BankDetector("both", var_in("y", (1,)), None),
            ],
            toy_variables(),
        )
        inferred = bank.with_inferred_reads()
        frames = {d.name: d.reads for d in inferred.detectors}
        assert frames["x_hi"] == frozenset({"x"})
        assert frames["both"] == frozenset({"y"})
        # incremental evaluation with inferred frames stays exact
        values = [2, 0]
        assert inferred.syndrome_of_values(values) == \
            bank.syndrome_of_values(values)


class TestWitnessBank:
    def test_from_witnesses_token_ring(self):
        from repro.programs import token_ring
        from repro.theory import witnesses_for

        model = token_ring.build(3)
        # embed each base action's witness into the same program shape
        witnesses = witnesses_for(
            model.ring, model.ring, model.invariant, model.spec
        )
        bank = DetectorBank.from_witnesses(witnesses, model.ring)
        assert bank.m == len(model.ring.actions)
        index = universe_index(model.ring)
        assert index is not None
        # every witness Z = g ∧ g' holds exactly where its predicate says
        for detector, row in zip(bank.detectors, bank.rows(index)):
            expected = index.region_bits(detector.predicate)
            assert row == expected

    def test_coverage_report(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        bank = DetectorBank(
            [("broken", ~model.invariant)],
            model.ring.variables,
            name="tr",
        )
        coverage = bank.coverage(
            model.ring, model.faults, model.spec, span=model.invariant
        )
        # the bank fires exactly on ¬invariant, so any fault-unsafe
        # state outside the invariant is covered
        assert 0.0 <= coverage.coverage <= 1.0
        assert coverage.fire_counts["broken"] == 0  # span is the invariant
        text = coverage.format()
        assert "bank tr" in text and "broken" in text


# ---------------------------------------------------------------------------
# decoder
# ---------------------------------------------------------------------------

class TestSyndromeDecoder:
    def test_exact_match(self):
        decoder = SyndromeDecoder(3)
        entry = decoder.register("110", name="fix_ab")
        decoded = decoder.decode(parse_syndrome("110"))
        assert decoded.exact and decoded.distance == 0
        assert decoded.entry is entry

    def test_nearest_fallback_and_ties(self):
        decoder = SyndromeDecoder(3)
        first = decoder.register(0b001, name="first")
        decoder.register(0b100, name="second")
        # 0b011 is distance 1 from first, distance 3 from second
        decoded = decoder.decode(0b011)
        assert not decoded.exact
        assert decoded.entry is first and decoded.distance == 1
        # 0b010 is distance 2 from both: earliest registration wins
        tied = decoder.decode(0b010)
        assert tied.entry is first and tied.distance == 2

    def test_max_distance_refuses_distant_guesses(self):
        decoder = SyndromeDecoder(4)
        decoder.register(0b0001)
        assert decoder.decode(0b1110, max_distance=2) is None
        assert decoder.decode(0b0011, max_distance=2) is not None

    def test_zero_syndrome_never_decodes(self):
        decoder = SyndromeDecoder(2)
        decoder.register(0b01)
        assert decoder.decode(0) is None

    def test_empty_decoder(self):
        assert SyndromeDecoder(2).decode(0b01) is None

    def test_registration_errors(self):
        decoder = SyndromeDecoder(2)
        with pytest.raises(ValueError, match="healthy"):
            decoder.register(0)
        with pytest.raises(ValueError, match="width"):
            decoder.register(0b100)
        decoder.register(0b01, name="one")
        with pytest.raises(ValueError, match="already"):
            decoder.register(0b01, name="other")

    def test_register_for_by_detector_name(self):
        bank = toy_bank()
        decoder = SyndromeDecoder.for_bank(bank)
        entry = decoder.register_for(bank, ["x_hi", "skew"], name="fix_x")
        assert entry.syndrome == 0b101
        with pytest.raises(KeyError):
            decoder.register_for(bank, ["missing"])

    def test_corrector_callback_is_kept(self):
        calls = []
        decoder = SyndromeDecoder(1)
        decoder.register(0b1, corrector=lambda *a: calls.append(a))
        decoded = decoder.decode(0b1)
        decoded.entry.corrector("rt", decoded, 1.0)
        assert calls == [("rt", decoded, 1.0)]

    def test_format_table(self):
        decoder = SyndromeDecoder(2)
        decoder.register(0b10, name="fix_b")
        text = decoder.format_table()
        assert "01 -> fix_b" in text
