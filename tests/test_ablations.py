"""Ablations: remove each load-bearing design element and watch the
model checker produce the counterexample that justifies it.

DESIGN.md calls out several constraints whose necessity is not obvious
from the code; each test here *removes* one and asserts the precise
failure mode:

- Dijkstra's ring with too few counter values (K ≤ n - 2) admits a fair
  cycle that never reaches a legitimate state;
- the mutex without the ``done`` flag livelocks: a process can re-enter
  its critical section forever and starve the token pass under weak
  fairness;
- the distributed reset without the wave-completion guard livelocks:
  the root keeps opening sessions faster than a lagging process can
  adopt them;
- the termination scanner without the dirty bit reports termination
  while a process is still active (the classic scan-behind bug);
- the Byzantine span without the "output ⇒ all copied ∧ majority"
  conjunct admits premature outputs from which a Byzantine general
  forces an agreement violation.
"""

import pytest

from repro.core import (
    Action,
    Predicate,
    Program,
    TRUE,
    TransitionSystem,
    Variable,
    assign,
    check_leads_to,
    is_detector,
    is_nonmasking_tolerant,
)
from repro.programs import distributed_reset, token_ring
from repro.programs.token_ring import has_token


def raw_ring(size: int, k: int) -> Program:
    """The ring without the builder's K validation."""
    variables = [Variable(f"x{i}", list(range(k))) for i in range(size)]
    tokens = {i: has_token(i, size) for i in range(size)}
    actions = [
        Action(
            "move0", tokens[0],
            assign(x0=lambda s, n=size, kk=k: (s[f"x{n - 1}"] + 1) % kk),
        )
    ]
    for i in range(1, size):
        actions.append(
            Action(f"move{i}", tokens[i],
                   assign(**{f"x{i}": lambda s, i=i: s[f"x{i - 1}"]}))
        )
    return Program(variables, actions, name=f"ring(n={size},K={k})")


def one_token(size: int) -> Predicate:
    tokens = {i: has_token(i, size) for i in range(size)}
    return Predicate(
        lambda s, ts=tokens: sum(1 for t in ts.values() if t(s)) == 1,
        name="one token",
    )


class TestRingCounterBound:
    @pytest.mark.parametrize("size,k", [(4, 3), (5, 4), (3, 2)])
    def test_k_equals_n_minus_1_stabilizes(self, size, k):
        ring = raw_ring(size, k)
        ts = TransitionSystem(ring, list(ring.states()))
        assert check_leads_to(ts, TRUE, one_token(size))

    @pytest.mark.parametrize("size,k", [(4, 2), (5, 3)])
    def test_k_below_bound_fails_with_fair_cycle(self, size, k):
        ring = raw_ring(size, k)
        ts = TransitionSystem(ring, list(ring.states()))
        result = check_leads_to(ts, TRUE, one_token(size))
        assert not result
        assert result.counterexample.kind == "lasso", (
            "the failure is a livelock, not a deadlock"
        )


class TestMutexDoneFlag:
    def test_without_done_flag_passing_starves(self):
        """Rebuild the 2-process mutex without the done flag: the
        holder may cycle enter/exit forever, so 'the other process
        eventually gets the token' fails under weak fairness."""
        variables = []
        for i in range(2):
            variables += [
                Variable(f"tok{i}", [False, True]),
                Variable(f"cs{i}", [False, True]),
            ]
        actions = []
        for i in range(2):
            nxt = (i + 1) % 2
            holds = Predicate(lambda s, i=i: s[f"tok{i}"], name=f"tok{i}")
            inside = Predicate(lambda s, i=i: s[f"cs{i}"], name=f"cs{i}")
            actions += [
                Action(f"enter{i}", holds & ~inside, assign(**{f"cs{i}": True})),
                Action(f"exit{i}", holds & inside, assign(**{f"cs{i}": False})),
                Action(
                    f"pass{i}", holds & ~inside,
                    assign(**{f"tok{i}": False, f"tok{nxt}": True}),
                ),
            ]
        mutex = Program(variables, actions, name="mutex_no_done")
        from repro.core import State

        start = State(tok0=True, cs0=False, tok1=False, cs1=False)
        ts = TransitionSystem(mutex, [start])
        result = check_leads_to(
            ts, TRUE, Predicate(lambda s: s["tok1"], name="tok1")
        )
        assert not result
        assert result.counterexample.kind == "lasso"


class TestResetWaveGuard:
    def test_without_completion_guard_root_livelocks(self, reset):
        """Remove the wave-completion conjunct from reset_root: the
        nonmasking certificate must fail with a livelock."""
        model = reset
        rebuilt_actions = []
        for action in model.program.actions:
            if action.name == "reset_root":
                rebuilt_actions.append(
                    Action(
                        "reset_root",
                        Predicate(lambda s: s["req0"], name="req0"),
                        action.statement,
                    )
                )
            else:
                rebuilt_actions.append(action)
        broken = model.program.with_actions(rebuilt_actions,
                                            name="reset_no_guard")
        result = is_nonmasking_tolerant(
            broken, model.faults, model.spec, model.invariant, model.span
        )
        assert not result


class TestScannerDirtyBit:
    def test_unsound_scanner_counterexample_shows_activation(self, termination):
        result = is_detector(
            termination.unsound, termination.done,
            termination.terminated, termination.from_,
        )
        assert not result
        # the counterexample must include a state where done holds but
        # some process is active — the false claim itself
        ce = result.counterexample
        assert ce is not None


class TestByzantineSpanConjunct:
    def test_weakened_span_admits_agreement_violation(self, byz):
        """Drop the 'output implies all-copied-and-majority' conjunct
        from T_byz.  The weakened predicate is still fault-closed (it
        says nothing about the Byzantine-general branch), but it now
        includes states where one output was emitted *before* all
        copies arrived - from which a general turning Byzantine makes a
        later honest output disagree.  The fail-safe certificate must
        fail from the weakened span while it passes from the real
        one."""
        from repro.core import is_failsafe_tolerant
        from repro.core.state import BOTTOM

        def weakened(state) -> bool:
            byzantine = [state["bg"]] + [
                state[f"b{j}"] for j in (1, 2, 3)
            ]
            if sum(byzantine) > 1:
                return False
            if not state["bg"]:
                for j in (1, 2, 3):
                    if state[f"b{j}"]:
                        continue
                    if state[f"d{j}"] not in (BOTTOM, state["dg"]):
                        return False
                    if state[f"out{j}"] not in (BOTTOM, state["dg"]):
                        return False
            return True

        span = Predicate(weakened, name="T_weak")
        weakened_check = is_failsafe_tolerant(
            byz.failsafe, byz.faults, byz.spec, byz.invariant, span
        )
        assert not weakened_check
        assert weakened_check.counterexample is not None
        real_check = is_failsafe_tolerant(
            byz.failsafe, byz.faults, byz.spec, byz.invariant, byz.span
        )
        assert real_check
