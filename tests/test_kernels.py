"""Kernel/interpreted parity and code-space census pins.

The exploration core runs the same BFS through four engines —
interpreted scalar, compiled batch kernels (pure-python rows or numpy
columns), the all-array columnar engine, and the sharded fork pool —
with one contract: which engine ran must be unobservable from the
finished :class:`~repro.core.exploration.TransitionSystem`.  These
tests pin that contract over the bundled program families (programs
*and* their fault builders), under symmetry quotients, and for every
worker count, by comparing full graph fingerprints (state order, edge
tuples, deadlocks) against the interpreted reference.

:func:`~repro.core.kernels.explore_codes` has no interpreted twin (it
exists for spaces where ``State`` objects are not an option), so it is
pinned two ways: exact closed-form census counts, and agreement with
the State-object explorer on instances small enough to run both.
"""

from __future__ import annotations

import pytest

from repro.core import kernels
from repro.core.exploration import (
    TransitionSystem,
    clear_all_caches,
    set_default_workers,
)
from repro.core.kernels import KernelError, Plan, explore_codes
from repro.core.state import StateInterner, state_space
from repro.programs import byzantine, memory_access, tmr, token_ring


@pytest.fixture(autouse=True)
def _restore_kernel_globals():
    yield
    kernels.set_backend("auto")
    set_default_workers(None)
    clear_all_caches()


def _graph(ts: TransitionSystem):
    """Full fingerprint: state discovery order, per-state edge tuples
    (program and fault), and deadlocks.  Two systems with equal
    fingerprints are indistinguishable to every checker."""
    states = tuple(ts.states)
    return (
        states,
        tuple(tuple(ts.program_edges_from(s)) for s in states),
        tuple(tuple(ts.fault_edges_from(s)) for s in states),
        tuple(ts.deadlock_states()),
    )


def _scenarios():
    """(name, program, starts, faults, symmetric) over the bundled
    families: planned actions, unplanned actions (byzantine lies),
    fault builders, and a symmetry quotient are all represented."""
    ring = token_ring.build(4)
    yield (
        "token_ring",
        ring.ring,
        list(state_space(ring.ring.variables)),
        tuple(ring.faults.actions),
        False,
    )
    ring54 = token_ring.build(5, 4)
    yield (
        "token_ring_sym",
        ring54.ring,
        list(state_space(ring54.ring.variables)),
        tuple(ring54.faults.actions),
        True,
    )
    byz = byzantine.build()
    yield ("byzantine_ib", byz.ib, byzantine.initial_states(), (), False)
    yield (
        "byzantine_masking",
        byz.masking,
        byzantine.initial_states(),
        tuple(byz.faults.actions),
        False,
    )
    t = tmr.build()
    yield (
        "tmr",
        t.tmr,
        list(state_space(t.tmr.variables)),
        tuple(t.faults.actions),
        False,
    )
    mem = memory_access.build()
    yield (
        "memory_access",
        mem.p,
        list(state_space(mem.p.variables)),
        tuple(mem.fault_anytime.actions),
        False,
    )


SCENARIOS = {name: rest for name, *rest in _scenarios()}


def _explored(name: str, backend: str, workers=None):
    program, starts, faults, symmetric = SCENARIOS[name]
    kernels.set_backend(backend)
    try:
        return _graph(
            TransitionSystem(
                program, starts, faults,
                symmetric=symmetric, workers=workers,
            )
        )
    finally:
        kernels.set_backend("auto")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("backend", ["auto", "numpy", "pure"])
def test_kernel_backends_match_interpreted(name, backend):
    """Every compiled engine produces the interpreted engine's graph,
    bit for bit, on every bundled scenario."""
    assert _explored(name, backend) == _explored(name, "interpreted")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("workers", [1, 2, 8])
def test_sharded_graph_identical_for_any_worker_count(name, workers):
    """The fork-pool engine's merge is deterministic: on every bundled
    scenario, any worker count (including the degenerate 1) reproduces
    the in-process graph — with and without a symmetry quotient."""
    reference = _explored(name, "auto")
    assert _explored(name, "auto", workers=workers) == reference


def test_default_workers_applies_to_new_systems():
    program, starts, faults, _ = SCENARIOS["token_ring"]
    reference = _graph(TransitionSystem(program, starts, faults))
    set_default_workers(2)
    sharded = _graph(TransitionSystem(program, starts, faults))
    assert sharded == reference


# ---------------------------------------------------------------------------
# code-space census
# ---------------------------------------------------------------------------

def test_explore_codes_full_space_census():
    """The ``"all"`` selector synthesizes the whole code space as level
    zero: 4^5 = 1024 ring states, one level, and the program's exact
    edge count."""
    model = token_ring.build(5, 4)
    reach = explore_codes(model.ring, "all")
    assert (reach.states, reach.levels) == (4 ** 5, 1)
    ts = TransitionSystem(
        model.ring, list(state_space(model.ring.variables))
    )
    assert reach.edges == sum(
        len(ts.program_edges_from(s)) for s in ts.states
    )


def test_explore_codes_matches_state_explorer():
    """From the same starts and faults, the code-space census agrees
    with the State-object explorer on states and edges."""
    model = token_ring.build(5, 4)
    starts = [next(iter(state_space(model.ring.variables)))]
    faults = tuple(model.faults.actions)
    reach = explore_codes(model.ring, starts, faults)
    ts = TransitionSystem(model.ring, starts, faults)
    assert reach.states == len(ts.states)
    assert reach.edges == sum(
        len(ts.program_edges_from(s)) + len(ts.fault_edges_from(s))
        for s in ts.states
    )


def test_explore_codes_byzantine_family_census():
    """The k=3 agreement program from its initial states: 2·3^3 = 54
    protocol configurations (per general value, each non-general's
    (d, out) pair walks bottom-bottom, v-bottom, v-v)."""
    ngs = (1, 2, 3)
    model = byzantine.build_family(ngs)
    reach = explore_codes(model.ib, byzantine.initial_states(ngs))
    assert reach.states == 2 * 3 ** 3


def test_explore_codes_rejects_unknown_selector():
    model = token_ring.build(4)
    with pytest.raises(KernelError):
        explore_codes(model.ring, "everything")


def test_explore_codes_requires_plans():
    """No interpreted fallback: an unplanned action is a hard error,
    not a silent downgrade."""
    model = byzantine.build()  # BYZ lie actions are deliberately unplanned
    with pytest.raises(KernelError):
        explore_codes(model.masking, byzantine.initial_states())


# ---------------------------------------------------------------------------
# plan validation and cache hygiene
# ---------------------------------------------------------------------------

def test_malformed_plan_raises_kernel_error():
    """Plans validate their IR at construction — a typo'd op never
    reaches a kernel compiler."""
    with pytest.raises(KernelError):
        Plan(("no_such_op", "x0"), [("set_const", "x0", 0)])
    with pytest.raises(KernelError):
        Plan(("true",), [("no_such_effect", "x0", 0)])


def test_clear_all_caches_drains_kernel_memos():
    model = token_ring.build(4)
    schema = next(iter(state_space(model.ring.variables)))._schema
    layout = kernels.layout_for(schema, model.ring._domains)
    action = model.ring.actions[0]
    assert kernels.batch_kernel(action, layout) is not None
    assert kernels.code_kernel(action, layout) is not None
    assert kernels.row_kernel(action, schema, model.ring._domains) is not None
    assert len(kernels._BATCH_KERNELS) > 0
    assert len(kernels._CODE_KERNELS) > 0
    assert len(kernels._ROW_KERNELS) > 0
    clear_all_caches()
    assert len(kernels._BATCH_KERNELS) == 0
    assert len(kernels._CODE_KERNELS) == 0
    assert len(kernels._ROW_KERNELS) == 0
    assert len(kernels._LAYOUTS) == 0


# ---------------------------------------------------------------------------
# bulk interning
# ---------------------------------------------------------------------------

def test_interner_canonical_many_matches_scalar():
    states = list(state_space(token_ring.build(4).ring.variables))
    duplicated = states + [s.assign(**dict(s)) for s in states]
    one = StateInterner()
    many = StateInterner()
    scalar = [one.canonical(s) for s in duplicated]
    bulk = many.canonical_many(duplicated)
    assert [tuple(s.items()) for s in scalar] == [
        tuple(s.items()) for s in bulk
    ]
    assert len(one) == len(many) == len(states)
    # representatives are pointer-unique within each pool
    assert all(a is b for a, b in zip(bulk, many.canonical_many(duplicated)))


def test_canonicalizer_canonical_many_matches_scalar():
    model = token_ring.build(5, 4)
    states = list(state_space(model.ring.variables))
    scalar_c = model.ring.symmetry.canonicalizer(model.ring)
    bulk_c = model.ring.symmetry.canonicalizer(model.ring)
    scalar = [scalar_c.canonical(s) for s in states]
    bulk = bulk_c.canonical_many(states)
    assert [tuple(s.items()) for s in scalar] == [
        tuple(s.items()) for s in bulk
    ]
    assert len(scalar_c) == len(bulk_c)
    # a second bulk pass returns pooled representatives by identity
    assert all(a is b for a, b in zip(bulk, bulk_c.canonical_many(states)))


# ---------------------------------------------------------------------------
# columnar adoption
# ---------------------------------------------------------------------------

def test_columnar_engine_stashes_edge_arrays():
    """On an eligible scenario the all-array engine records the dense
    adjacency (``_edge_arrays``/``_labeled_rows``) that SystemIndex
    adopts instead of re-deriving ids from State-level edges."""
    from repro.core.regions import system_index

    model = token_ring.build(5, 4)
    kernels.set_backend("numpy")
    ts = TransitionSystem(
        model.ring,
        list(state_space(model.ring.variables)),
        tuple(model.faults.actions),
    )
    assert ts._edge_arrays is not None
    assert ts._labeled_rows is not None
    index = system_index(ts)
    assert index.n == len(ts.states)
    # the adopted CSR agrees with the State-level edge tables
    id_of = {s: i for i, s in enumerate(ts.states)}
    states = list(ts.states)
    for u, targets in enumerate(index.psucc):
        expected = list(dict.fromkeys(
            id_of[v] for _, v in ts.program_edges_from(states[u])
        ))
        assert list(targets) == expected
