"""Unit tests for fault-classes and fault spans."""

import pytest

from repro.core.action import Action, assign
from repro.core.faults import (
    FaultClass,
    crash_variable,
    perturb_variable,
    set_variable,
)
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.state import State, Variable


def toggler():
    return Program(
        [Variable("x", [0, 1]), Variable("up", [False, True])],
        [
            Action(
                "toggle",
                Predicate(lambda s: not s["up"], "¬up"),
                assign(x=lambda s: 1 - s["x"]),
            )
        ],
        name="toggler",
    )


class TestFaultClass:
    def test_iteration_and_len(self):
        f = set_variable("x", 0)
        assert len(f) == 1
        assert [a.name for a in f] == ["fault_set_x_0"]

    def test_union(self):
        combined = set_variable("x", 0).union(crash_variable("up"))
        assert len(combined) == 2

    def test_system_marks_fault_edges(self):
        f = set_variable("x", 0)
        ts = f.system(toggler(), TRUE)
        fault_names = {
            name for s in ts.states for name, _ in ts.fault_edges_from(s)
        }
        assert fault_names == {"fault_set_x_0"}

    def test_check_span(self):
        f = crash_variable("up")
        result = f.check_span(
            toggler(),
            span=TRUE,
            invariant=Predicate(lambda s: not s["up"], "¬up"),
        )
        assert result

    def test_check_span_failure(self):
        f = crash_variable("up")
        not_up = Predicate(lambda s: not s["up"], "¬up")
        result = f.check_span(toggler(), span=not_up, invariant=not_up)
        assert not result, "the crash leaves ¬up"


class TestFaultShapes:
    def test_perturb_variable_hits_every_other_value(self):
        v = Variable("x", [0, 1, 2])
        f = perturb_variable(v)
        p = Program([v], [], name="empty")
        successors = set()
        for action in f:
            successors.update(t["x"] for t in action.successors(State(x=0)))
        assert successors == {1, 2}, "perturbation must change the value"

    def test_perturb_respects_guard(self):
        v = Variable("x", [0, 1])
        f = perturb_variable(v, guard=Predicate(lambda s: False, "never"))
        assert all(not a.successors(State(x=0)) for a in f)

    def test_set_variable(self):
        f = set_variable("x", 1)
        (action,) = f.actions
        assert action.successors(State(x=0)) == (State(x=1),)

    def test_crash_latches(self):
        f = crash_variable("up")
        (action,) = f.actions
        assert action.successors(State(up=False)) == (State(up=True),)
        assert action.successors(State(up=True)) == (), "already crashed"
