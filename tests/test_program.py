"""Unit tests for programs and the paper's composition operators."""

import pytest

from repro.core.action import Action, assign, skip
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.state import State, Variable


def counter(limit: int = 2, name: str = "counter") -> Program:
    return Program(
        [Variable("x", list(range(limit + 1)))],
        [
            Action(
                "inc",
                Predicate(lambda s, lim=limit: s["x"] < lim, f"x<{limit}"),
                assign(x=lambda s: s["x"] + 1),
            )
        ],
        name=name,
    )


class TestConstruction:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            Program([Variable("x", [0]), Variable("x", [1])], [])

    def test_lookup(self):
        p = counter()
        assert p.variable("x").name == "x"
        assert p.action("inc").name == "inc"
        with pytest.raises(KeyError):
            p.variable("y")
        with pytest.raises(KeyError):
            p.action("dec")

    def test_state_count(self):
        assert counter(2).state_count() == 3

    def test_states_enumeration(self):
        assert len(list(counter(2).states())) == 3

    def test_validate_state(self):
        p = counter(2)
        p.validate_state(State(x=0))
        with pytest.raises(ValueError):
            p.validate_state(State(x=9))
        with pytest.raises(ValueError):
            p.validate_state(State(y=0))


class TestSemantics:
    def test_enabled_actions(self):
        p = counter(1)
        assert [a.name for a in p.enabled_actions(State(x=0))] == ["inc"]
        assert p.enabled_actions(State(x=1)) == []

    def test_successors(self):
        assert counter().successors(State(x=0)) == [("inc", State(x=1))]

    def test_deadlock(self):
        p = counter(1)
        assert p.is_deadlocked(State(x=1))
        assert not p.is_deadlocked(State(x=0))


class TestParallelComposition:
    def test_union_of_actions(self):
        p = counter(name="p")
        q = Program(
            [Variable("y", [0, 1])],
            [Action("set_y", TRUE, assign(y=1))],
            name="q",
        )
        composed = p | q
        assert {a.name for a in composed.actions} == {"inc", "set_y"}
        assert set(composed.variable_names) == {"x", "y"}

    def test_shared_variable_domains_must_agree(self):
        p = counter(2)
        q = Program([Variable("x", [0, 1])], [], name="q")
        with pytest.raises(ValueError, match="conflicting domains"):
            p.parallel(q)

    def test_shared_variable_same_domain_ok(self):
        p = counter(2)
        q = Program(
            [Variable("x", [0, 1, 2])],
            [Action("reset", TRUE, assign(x=0))],
            name="q",
        )
        composed = p.parallel(q)
        assert len(composed.variables) == 1

    def test_duplicate_action_names_rejected(self):
        p = counter()
        with pytest.raises(ValueError):
            p.parallel(counter(name="other"))

    def test_name_default(self):
        p = counter(name="p")
        q = Program([Variable("y", [0])], [], name="q")
        assert p.parallel(q).name == "(p || q)"


class TestRestriction:
    def test_every_guard_strengthened(self):
        p = counter(2)
        even = Predicate(lambda s: s["x"] % 2 == 0, "even")
        restricted = p.restrict(even)
        assert restricted.action("inc").enabled(State(x=0))
        assert not restricted.action("inc").enabled(State(x=1))

    def test_restriction_preserves_statements(self):
        p = counter(2).restrict(TRUE)
        assert p.successors(State(x=0)) == [("inc", State(x=1))]


class TestSequentialComposition:
    def test_definition_matches_paper(self):
        """p ;_Z q  must equal  p || (Z ∧ q)."""
        p = counter(2, name="p")
        q = Program(
            [Variable("x", [0, 1, 2])],
            [Action("reset", TRUE, assign(x=0))],
            name="q",
        )
        z = Predicate(lambda s: s["x"] == 2, "x=2")
        seq = p.sequential(q, z)
        assert {a.name for a in seq.actions} == {"inc", "reset"}
        # reset only enabled under Z
        assert not seq.action("reset").enabled(State(x=1))
        assert seq.action("reset").enabled(State(x=2))


class TestHelpers:
    def test_with_actions(self):
        p = counter()
        q = p.with_actions([Action("noop", TRUE, skip())])
        assert [a.name for a in q.actions] == ["noop"]
        assert q.variable_names == p.variable_names

    def test_with_variables(self):
        p = counter()
        q = p.with_variables([Variable("y", [0, 1])])
        assert set(q.variable_names) == {"x", "y"}

    def test_renamed(self):
        assert counter().renamed("zz").name == "zz"


class TestEncapsulation:
    def test_memory_family_encapsulates(self, memory):
        assert memory.pf.encapsulates(memory.p)
        assert memory.pm.encapsulates(memory.pn)

    def test_guard_strengthening_is_encapsulation(self):
        base = counter(2, name="base")
        refined = Program(
            [Variable("x", [0, 1, 2]), Variable("z", [False, True])],
            [
                Action(
                    "inc_guarded",
                    Predicate(lambda s: s["x"] < 2 and s["z"], "x<2 ∧ z"),
                    assign(x=lambda s: s["x"] + 1),
                ),
                Action("arm", Predicate(lambda s: not s["z"], "¬z"),
                       assign(z=True)),
            ],
            name="refined",
        )
        assert refined.encapsulates(base)

    def test_new_base_effect_is_not_encapsulation(self):
        base = counter(2, name="base")
        rogue = Program(
            [Variable("x", [0, 1, 2])],
            [Action("dec", Predicate(lambda s: s["x"] > 0, "x>0"),
                    assign(x=lambda s: s["x"] - 1))],
            name="rogue",
        )
        assert not rogue.encapsulates(base)

    def test_guard_weakening_is_not_encapsulation(self):
        base = counter(1, name="base")
        weakened = Program(
            [Variable("x", [0, 1, 2])],
            [Action("inc_any", Predicate(lambda s: s["x"] < 2, "x<2"),
                    assign(x=lambda s: s["x"] + 1))],
            name="weakened",
        )
        # enabled at x=1 where the base action is not
        assert not weakened.encapsulates(base)

    def test_component_only_actions_are_fine(self):
        base = counter(2, name="base")
        observer = Program(
            [Variable("x", [0, 1, 2]), Variable("seen", [False, True])],
            [
                Action("inc", Predicate(lambda s: s["x"] < 2, "x<2"),
                       assign(x=lambda s: s["x"] + 1)),
                Action("observe", Predicate(lambda s: not s["seen"], "¬seen"),
                       assign(seen=True)),
            ],
            name="observer",
        )
        assert observer.encapsulates(base)
