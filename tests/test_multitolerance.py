"""Tests for multitolerance (the paper's concluding programme, [4])."""

import pytest

from repro.core import (
    ToleranceRequirement,
    is_masking_tolerant,
    is_multitolerant,
    is_nonmasking_tolerant,
)


@pytest.fixture(scope="module")
def requirements(mutex):
    return (
        ToleranceRequirement(mutex.faults, "masking", mutex.span),
        ToleranceRequirement(mutex.duplication, "masking",
                             mutex.span_duplication),
    )


class TestMutexMultitolerance:
    def test_masking_to_loss(self, mutex):
        assert is_masking_tolerant(
            mutex.multitolerant, mutex.faults, mutex.spec_strong,
            mutex.invariant, mutex.span,
        )

    def test_masking_to_duplication(self, mutex):
        assert is_masking_tolerant(
            mutex.multitolerant, mutex.duplication, mutex.spec_strong,
            mutex.invariant, mutex.span_duplication,
        )

    def test_combined_requirement(self, mutex, requirements):
        assert is_multitolerant(
            mutex.multitolerant, mutex.spec_strong, mutex.invariant,
            requirements,
        )

    def test_plain_tolerant_fails_duplication(self, mutex):
        """Without the entry detector and dedup corrector, duplication
        defeats the CS-liveness spec (and exclusion transiently)."""
        assert not is_masking_tolerant(
            mutex.tolerant, mutex.duplication, mutex.spec_strong,
            mutex.invariant, mutex.span_duplication,
        )

    def test_plain_tolerant_fails_the_multirequirement(self, mutex, requirements):
        result = is_multitolerant(
            mutex.tolerant, mutex.spec_strong, mutex.invariant, requirements
        )
        assert not result

    def test_interaction_check_runs_union_faults(self, mutex, requirements):
        """The combined check must survive loss and duplication striking
        in the same run."""
        result = is_multitolerant(
            mutex.multitolerant, mutex.spec_strong, mutex.invariant,
            requirements, check_interaction=True,
        )
        assert result
        assert "combined" in result.details or result.ok

    def test_interaction_check_optional(self, mutex, requirements):
        assert is_multitolerant(
            mutex.multitolerant, mutex.spec_strong, mutex.invariant,
            requirements, check_interaction=False,
        )


class TestDedupCorrector:
    def test_spares_cs_holder(self, mutex):
        from repro.core import State

        state = State(
            tok0=True, cs0=True, done0=False,
            tok1=True, cs1=False, done1=False,
            tok2=False, cs2=False, done2=False,
        )
        dedup = mutex.multitolerant.action("dedup")
        (after,) = dedup.successors(state)
        assert after["tok0"] and not after["tok1"]

    def test_keeps_lowest_index_when_nobody_in_cs(self, mutex):
        from repro.core import State

        state = State(
            tok0=False, cs0=False, done0=False,
            tok1=True, cs1=False, done1=True,
            tok2=True, cs2=False, done2=False,
        )
        dedup = mutex.multitolerant.action("dedup")
        (after,) = dedup.successors(state)
        assert after["tok1"] and not after["tok2"]

    def test_disabled_with_one_token(self, mutex):
        from repro.core import State

        state = State(
            tok0=True, cs0=False, done0=False,
            tok1=False, cs1=False, done1=False,
            tok2=False, cs2=False, done2=False,
        )
        assert not mutex.multitolerant.action("dedup").enabled(state)

    def test_entry_detector_blocks_under_duplication(self, mutex):
        from repro.core import State

        state = State(
            tok0=True, cs0=False, done0=False,
            tok1=True, cs1=False, done1=False,
            tok2=False, cs2=False, done2=False,
        )
        assert not mutex.multitolerant.action("enter0").enabled(state)
        assert mutex.tolerant.action("enter0").enabled(state), (
            "the plain variant happily enters — the exclusion hazard"
        )


class TestRequirementValidation:
    def test_unknown_kind_propagates(self, mutex):
        bad = (ToleranceRequirement(mutex.faults, "perfect", mutex.span),)
        with pytest.raises(ValueError):
            is_multitolerant(
                mutex.multitolerant, mutex.spec_strong, mutex.invariant, bad
            )

    def test_single_requirement_equals_plain_check(self, mutex):
        single = (ToleranceRequirement(mutex.faults, "masking", mutex.span),)
        assert is_multitolerant(
            mutex.multitolerant, mutex.spec_strong, mutex.invariant, single
        )
