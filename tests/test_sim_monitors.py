"""Edge cases for PredicateMonitor's measurement helpers and the
``on_transition`` callback."""

import pytest

from repro.sim import Network, PredicateMonitor, SimProcess


class Stepper(SimProcess):
    """Increments ``x`` once per time unit."""

    def __init__(self, pid):
        super().__init__(pid)
        self.x = 0

    def on_start(self):
        self.set_timer("tick", 1.0)

    def on_timer(self, name):
        self.x += 1
        self.set_timer("tick", 1.0)


def monitor_for(predicate, horizon=10.0, period=1.0, **kwargs):
    network = Network(seed=0)
    network.add_process(Stepper("p"))
    monitor = PredicateMonitor(
        network, predicate, period=period, horizon=horizon, **kwargs
    )
    network.run(until=horizon)
    return monitor


class TestMeasurementEdgeCases:
    def test_empty_samples(self):
        network = Network(seed=0)  # nothing scheduled, never runs
        monitor = PredicateMonitor(network, lambda s: True)
        assert monitor.first_true() is None
        assert monitor.convergence_time() is None
        assert monitor.fraction_true() == 0.0

    def test_never_true(self):
        monitor = monitor_for(lambda s: False)
        assert monitor.samples, "the monitor did sample"
        assert monitor.first_true() is None
        assert monitor.convergence_time() is None
        assert monitor.fraction_true() == 0.0

    def test_ends_false_has_no_convergence_time(self):
        # true during [2, 5), false afterwards
        monitor = monitor_for(lambda s: 2 <= s["p"]["x"] < 5)
        assert monitor.first_true() is not None
        assert monitor.convergence_time() is None
        assert 0.0 < monitor.fraction_true() < 1.0

    def test_always_true(self):
        monitor = monitor_for(lambda s: True)
        assert monitor.first_true() == 0.0
        assert monitor.convergence_time() == 0.0
        assert monitor.fraction_true() == 1.0

    def test_converges_midway(self):
        monitor = monitor_for(lambda s: s["p"]["x"] >= 4)
        first = monitor.first_true()
        assert first is not None and first > 0.0
        assert monitor.convergence_time() == first  # never flips back
        assert monitor.fraction_true() == pytest.approx(
            sum(1 for _, v in monitor.samples if v) / len(monitor.samples)
        )

    def test_single_sample_true(self):
        monitor = monitor_for(lambda s: True, horizon=0.5, period=1.0)
        assert len(monitor.samples) == 1
        assert monitor.first_true() == 0.0
        assert monitor.convergence_time() == 0.0
        assert monitor.fraction_true() == 1.0


class TestOnTransition:
    def test_fires_on_first_sample_and_flips_only(self):
        seen = []
        monitor = monitor_for(
            lambda s: 2 <= s["p"]["x"] < 5,
            on_transition=lambda t, v: seen.append((t, v)),
        )
        values = [v for _, v in seen]
        assert values == [False, True, False]
        # the callback times are sampling instants where the value changed
        for time, value in seen:
            assert (time, value) in monitor.samples

    def test_constant_predicate_fires_once(self):
        seen = []
        monitor_for(lambda s: True,
                    on_transition=lambda t, v: seen.append((t, v)))
        assert seen == [(0.0, True)]

    def test_default_behaviour_unchanged(self):
        monitor = monitor_for(lambda s: True)
        assert monitor.on_transition is None
        assert monitor.fraction_true() == 1.0


class TestDetach:
    def test_detach_mid_run_stops_sampling(self):
        network = Network(seed=0)
        network.add_process(Stepper("p"))
        monitor = PredicateMonitor(
            network, lambda s: True, period=1.0, horizon=20.0
        )
        # run half the horizon, detach, run the rest
        network.run(until=5.0)
        taken = len(monitor.samples)
        assert taken >= 5
        monitor.detach()
        network.run(until=20.0)
        assert len(monitor.samples) == taken, (
            "a detached monitor kept sampling"
        )

    def test_detach_before_run_takes_no_samples(self):
        network = Network(seed=0)
        network.add_process(Stepper("p"))
        seen = []
        monitor = PredicateMonitor(
            network, lambda s: True, period=1.0, horizon=10.0,
            on_transition=lambda t, v: seen.append((t, v)),
        )
        monitor.detach()
        network.run(until=10.0)
        assert monitor.samples == []
        assert seen == []

    def test_detach_is_idempotent_and_keeps_measurements(self):
        network = Network(seed=0)
        network.add_process(Stepper("p"))
        monitor = PredicateMonitor(
            network, lambda s: s["p"]["x"] >= 2, period=1.0, horizon=20.0
        )
        network.run(until=6.0)
        monitor.detach()
        monitor.detach()
        network.run(until=20.0)
        # samples taken before detach still drive the measurement helpers
        assert monitor.first_true() is not None
        assert monitor.fraction_true() > 0.0

    def test_other_monitors_unaffected(self):
        network = Network(seed=0)
        network.add_process(Stepper("p"))
        detached = PredicateMonitor(
            network, lambda s: True, period=1.0, horizon=10.0
        )
        kept = PredicateMonitor(
            network, lambda s: True, period=1.0, horizon=10.0
        )
        detached.detach()
        network.run(until=10.0)
        assert detached.samples == []
        assert len(kept.samples) >= 10
