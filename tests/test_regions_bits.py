"""Property tests for the big-int bit helpers behind Region, and the
Region.to_predicate → region() round-trip on bundled programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import (
    Region,
    StateIndex,
    bits_of_ids,
    first_bit,
    iter_bits,
    universe_index,
)


# ---------------------------------------------------------------------------
# bit twiddling: iter_bits / first_bit / bits_of_ids
# ---------------------------------------------------------------------------

#: a universe size and a subset of its ids
id_sets = st.integers(min_value=1, max_value=512).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.sets(st.integers(min_value=0, max_value=n - 1)),
    )
)


class TestBitHelpers:
    @given(id_sets)
    @settings(max_examples=200)
    def test_bits_of_ids_iter_bits_round_trip(self, case):
        n, ids = case
        bits = bits_of_ids(ids, n)
        assert list(iter_bits(bits, n)) == sorted(ids)

    @given(id_sets)
    @settings(max_examples=200)
    def test_bits_of_ids_popcount(self, case):
        n, ids = case
        assert bits_of_ids(ids, n).bit_count() == len(ids)

    @given(id_sets)
    @settings(max_examples=100)
    def test_first_bit_is_minimum(self, case):
        n, ids = case
        bits = bits_of_ids(ids, n)
        if ids:
            assert first_bit(bits) == min(ids)

    def test_empty_mask(self):
        assert bits_of_ids([], 64) == 0
        assert list(iter_bits(0, 64)) == []

    def test_full_mask(self):
        # dense regime of iter_bits: more than half the positions set
        n = 300
        bits = (1 << n) - 1
        assert list(iter_bits(bits, n)) == list(range(n))
        assert first_bit(bits) == 0
        assert bits_of_ids(range(n), n) == bits

    def test_sparse_mask_crosses_byte_boundaries(self):
        # sparse regime: isolated bits far apart, including byte edges
        n = 1 << 12
        ids = [0, 7, 8, 63, 64, 65, 1000, n - 1]
        bits = bits_of_ids(ids, n)
        assert list(iter_bits(bits, n)) == ids
        assert first_bit(bits) == 0

    def test_single_high_bit(self):
        n = 4096
        bits = bits_of_ids([n - 1], n)
        assert list(iter_bits(bits, n)) == [n - 1]
        assert first_bit(bits) == n - 1

    @given(id_sets)
    @settings(max_examples=100)
    def test_iter_bits_regimes_agree(self, case):
        """The sparse bit-peeling and dense byte-scanning paths must
        enumerate identically; force both by flipping the density."""
        n, ids = case
        bits = bits_of_ids(ids, n)
        complement = bits_of_ids(set(range(n)) - ids, n)
        assert sorted(
            set(iter_bits(bits, n)) | set(iter_bits(complement, n))
        ) == list(range(n))


# ---------------------------------------------------------------------------
# Region.to_predicate -> region() round trip
# ---------------------------------------------------------------------------

def _round_trip(program, predicate):
    index = universe_index(program)
    if index is None:
        index = StateIndex(program.states())
    original = index.region(predicate)
    # materialize as an extensional predicate, then sweep it back
    back = index.region(original.to_predicate(name="rt"))
    assert back.bits == original.bits
    # and the complement round-trips too
    inverted = ~original
    assert index.region(inverted.to_predicate()).bits == inverted.bits


class TestRegionPredicateRoundTrip:
    def test_token_ring(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        _round_trip(model.ring, model.invariant)

    def test_tmr(self):
        from repro.programs import tmr

        model = tmr.build()
        _round_trip(model.tmr, model.invariant)
