"""Tests for hierarchical and distributed component construction."""

import pytest

from repro.components.hierarchy import (
    parallel_detector,
    sequential_detector,
    wave_corrector,
)
from repro.core import Action, Predicate, TRUE, Variable, assign
from repro.core.state import State


def observed_bits(count=3):
    return [Variable(f"b{i}", [False, True]) for i in range(count)]


def bit_conjuncts(count=3):
    return [
        Predicate(lambda s, i=i: s[f"b{i}"], name=f"b{i}") for i in range(count)
    ]


class TestSequentialDetector:
    def test_verifies(self):
        instance = sequential_detector(observed_bits(), bit_conjuncts())
        assert instance.verify()

    def test_single_conjunct(self):
        instance = sequential_detector(observed_bits(1), bit_conjuncts(1))
        assert instance.verify()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sequential_detector([], [])

    def test_witness_requires_full_sweep(self):
        instance = sequential_detector(observed_bits(2), bit_conjuncts(2))
        raise_action = instance.program.action("zall_raise")
        midway = State(b0=True, b1=True, idx=1, zall=False)
        assert not raise_action.enabled(midway)
        done = State(b0=True, b1=True, idx=2, zall=False)
        assert raise_action.enabled(done)

    def test_restart_on_failing_conjunct(self):
        instance = sequential_detector(observed_bits(2), bit_conjuncts(2))
        restart = instance.program.action("idx_restart")
        stuck = State(b0=True, b1=False, idx=1, zall=False)
        (after,) = restart.successors(stuck)
        assert after["idx"] == 0


class TestParallelDetector:
    def test_verifies(self):
        instance = parallel_detector(observed_bits(), bit_conjuncts())
        assert instance.verify()

    def test_root_needs_all_locals(self):
        instance = parallel_detector(observed_bits(2), bit_conjuncts(2))
        root_raise = instance.program.action("zroot_raise")
        partial = State(b0=True, b1=True, z0=True, z1=False, zroot=False)
        assert not root_raise.enabled(partial)
        full = State(b0=True, b1=True, z0=True, z1=True, zroot=False)
        assert root_raise.enabled(full)

    def test_local_witnesses_are_truthful(self):
        """Within the verification start predicate, a raised local flag
        implies its conjunct."""
        instance = parallel_detector(observed_bits(2), bit_conjuncts(2))
        lying = State(b0=False, b1=True, z0=True, z1=False, zroot=False)
        assert not instance.from_(lying)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_detector([], [])


class TestWaveCorrector:
    def repairs(self, count=3, break_earlier=False):
        actions = []
        for i in range(count):
            updates = {f"b{i}": True}
            if break_earlier and i == 1:
                updates["b0"] = False  # sabotage: stage 1 undoes stage 0
            actions.append(Action(f"repair{i}", TRUE, assign(**updates)))
        return actions

    def test_verifies(self):
        instance = wave_corrector(
            observed_bits(), bit_conjuncts(), self.repairs()
        )
        assert instance.verify()

    def test_stage_order_enforced(self):
        instance = wave_corrector(
            observed_bits(2), bit_conjuncts(2), self.repairs(2)
        )
        stage1 = instance.program.action("repair1")
        premature = State(b0=False, b1=False, zfix=False)
        assert not stage1.enabled(premature), "stage 1 waits for stage 0"

    def test_self_healing_despite_one_bad_repair(self):
        """A single stage that breaks an earlier conjunct is *healed*
        by re-running the earlier stage (the wave restarts), so the
        composition still verifies — interference must be mutual to be
        fatal."""
        instance = wave_corrector(
            observed_bits(), bit_conjuncts(),
            self.repairs(break_earlier=True),
        )
        assert instance.verify()

    def test_mutually_destructive_repairs_fail_verification(self):
        """Two stages that undo each other oscillate forever: the model
        checker exhibits the fair cycle and Convergence fails."""
        repairs = [
            Action("repair0", TRUE, assign(b0=True, b1=False)),
            Action("repair1", TRUE, assign(b1=True, b0=False)),
        ]
        instance = wave_corrector(
            observed_bits(2), bit_conjuncts(2), repairs
        )
        result = instance.verify()
        assert not result
        assert result.counterexample is not None

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wave_corrector(observed_bits(2), bit_conjuncts(2),
                           self.repairs(1))
