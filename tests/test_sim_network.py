"""Tests for the network, processes, fault injectors and monitors."""

import pytest

from repro.sim import (
    ChannelConfig,
    CrashInjector,
    Network,
    PredicateMonitor,
    RestartInjector,
    SimProcess,
    StateCorruptionInjector,
)
from repro.sim.faults import MessageLossBurst


class Echo(SimProcess):
    """Replies 'pong' to every 'ping'."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))
        if message == "ping":
            self.send(sender, "pong")


class Pinger(SimProcess):
    def __init__(self, pid, target, count=3, period=1.0):
        super().__init__(pid)
        self.target = target
        self.remaining = count
        self.period = period
        self.pongs = 0

    def on_start(self):
        self.set_timer("tick", self.period)

    def on_timer(self, name):
        if self.remaining > 0:
            self.send(self.target, "ping")
            self.remaining -= 1
            self.set_timer("tick", self.period)

    def on_message(self, sender, message):
        if message == "pong":
            self.pongs += 1


def build(seed=0, channel=None):
    network = Network(seed=seed, default_channel=channel or ChannelConfig(delay=0.1))
    pinger = network.add_process(Pinger("ping", target="echo"))
    echo = network.add_process(Echo("echo"))
    return network, pinger, echo


class TestMessaging:
    def test_request_reply(self):
        network, pinger, echo = build()
        network.run(until=20)
        assert pinger.pongs == 3
        assert len(echo.received) == 3

    def test_duplicate_pid_rejected(self):
        network, _, _ = build()
        with pytest.raises(ValueError):
            network.add_process(Echo("echo"))

    def test_unknown_destination_rejected(self):
        network, _, _ = build()
        network.start()
        with pytest.raises(KeyError):
            network.transmit("echo", "ghost", "hello")

    def test_trace_records_events(self):
        network, _, _ = build()
        network.run(until=20)
        kinds = {e.kind for e in network.trace}
        assert {"send", "deliver", "timer"} <= kinds

    def test_deterministic_given_seed(self):
        n1, p1, _ = build(seed=42)
        n2, p2, _ = build(seed=42)
        n1.run(until=20)
        n2.run(until=20)
        assert [(e.time, e.kind) for e in n1.trace] == [
            (e.time, e.kind) for e in n2.trace
        ]

    def test_lossy_channel_drops(self):
        network, pinger, _ = build(
            channel=ChannelConfig(delay=0.1, loss_probability=1.0)
        )
        network.run(until=20)
        assert pinger.pongs == 0
        assert network.events("drop")

    def test_per_pair_channel_override(self):
        network, pinger, _ = build()
        network.set_channel("ping", "echo",
                            ChannelConfig(delay=0.1, loss_probability=1.0))
        network.run(until=20)
        assert pinger.pongs == 0, "pings dropped, pongs never provoked"


class TestFaultInjectors:
    def test_crash_stops_delivery(self):
        network, pinger, echo = build()
        CrashInjector(time=0.5, pid="echo").arm(network)
        network.run(until=20)
        assert pinger.pongs == 0
        assert echo.crashed

    def test_restart_resumes(self):
        network, pinger, echo = build()
        CrashInjector(time=0.5, pid="echo").arm(network)
        RestartInjector(time=1.5, pid="echo").arm(network)
        network.run(until=20)
        assert not echo.crashed
        assert pinger.pongs >= 1, "pings after the restart get answered"

    def test_corruption(self):
        network, pinger, _ = build()
        StateCorruptionInjector.of(0.5, "ping", pongs=99).arm(network)
        network.run(until=20)
        assert pinger.pongs >= 99

    def test_corruption_of_unknown_attribute_rejected(self):
        network, _, _ = build()
        injector = StateCorruptionInjector.of(0.5, "ping", ghost=1)
        injector.arm(network)
        with pytest.raises(AttributeError):
            network.run(until=20)

    def test_message_loss_burst(self):
        network, pinger, _ = build()
        MessageLossBurst(start=0.0, duration=100.0,
                         source="ping", destination="echo").arm(network)
        network.run(until=20)
        assert pinger.pongs == 0

    def test_crashed_process_sends_nothing(self):
        network, pinger, echo = build()
        CrashInjector(time=0.0, pid="ping").arm(network)
        network.run(until=20)
        assert not echo.received


class TestMonitor:
    def test_detection_latency(self):
        network, pinger, _ = build()
        monitor = PredicateMonitor(
            network,
            predicate=lambda snap: snap["ping"]["pongs"] >= 1,
            period=0.5,
        )
        network.run(until=20)
        assert monitor.first_true() is not None
        assert monitor.convergence_time() is not None
        assert 0 < monitor.fraction_true() <= 1

    def test_never_true(self):
        network, _, _ = build(
            channel=ChannelConfig(delay=0.1, loss_probability=1.0)
        )
        monitor = PredicateMonitor(
            network,
            predicate=lambda snap: snap["ping"]["pongs"] >= 1,
            period=0.5,
        )
        network.run(until=10)
        assert monitor.first_true() is None
        assert monitor.convergence_time() is None
        assert monitor.fraction_true() == 0.0


class TestSnapshot:
    def test_snapshot_excludes_wiring(self):
        network, pinger, _ = build()
        snap = pinger.snapshot()
        assert "network" not in snap
        assert snap["pongs"] == 0
        assert snap["pid"] == "ping"

    def test_global_snapshot(self):
        network, _, _ = build()
        snap = network.global_snapshot()
        assert set(snap) == {"ping", "echo"}
