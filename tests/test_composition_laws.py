"""Algebraic laws of the composition operators and the tolerance
hierarchy, checked as properties.

These are facts the paper uses silently; here they are validated on
random programs (hypothesis) and across the whole program catalogue:

- ``p ‖ q`` and ``q ‖ p`` generate identical transition systems;
- ``Z ∧ (W ∧ p) = (Z ∧ W) ∧ p`` (restriction composes);
- ``p ;_Z q`` literally equals ``p ‖ (Z ∧ q)`` (the paper's definition);
- refinement is reflexive (``p`` refines ``p`` from any closed
  predicate) and transitive along the memory family;
- masking tolerance implies fail-safe and nonmasking tolerance with the
  same witnesses (the paper's "masking is the strictest" remark), for
  every masking-tolerant catalogue program.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Action,
    Predicate,
    Program,
    State,
    TRUE,
    Variable,
    assign,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    refines_program,
)
from repro.core.exploration import TransitionSystem
from repro.core.invariants import reachable_invariant

DOMAIN = [0, 1, 2]


@st.composite
def small_programs(draw, prefix="a"):
    action_count = draw(st.integers(min_value=1, max_value=3))
    actions = []
    for index in range(action_count):
        source = draw(st.sampled_from(DOMAIN))
        target = draw(st.sampled_from(DOMAIN))
        actions.append(
            Action(
                f"{prefix}{index}",
                Predicate(lambda s, a=source: s["x"] == a, f"x={source}"),
                assign(x=target),
            )
        )
    return Program([Variable("x", DOMAIN)], actions, name=f"random_{prefix}")


def transition_set(program, start):
    ts = TransitionSystem(program, [start])
    return {
        (s, t) for s in ts.states for _, t in ts.program_edges_from(s)
    }


@settings(max_examples=100, deadline=None)
@given(p=small_programs("a"), q=small_programs("b"),
       start=st.sampled_from(DOMAIN))
def test_parallel_composition_commutes(p, q, start):
    state = State(x=start)
    assert transition_set(p | q, state) == transition_set(q | p, state)


@settings(max_examples=100, deadline=None)
@given(p=small_programs("a"), start=st.sampled_from(DOMAIN),
       z=st.sampled_from(DOMAIN), w=st.sampled_from(DOMAIN))
def test_restriction_composes(p, start, z, w):
    pz = Predicate(lambda s, v=z: s["x"] != v, f"x≠{z}")
    pw = Predicate(lambda s, v=w: s["x"] != v, f"x≠{w}")
    nested = p.restrict(pw).restrict(pz)
    combined = p.restrict(pz & pw)
    state = State(x=start)
    assert transition_set(nested, state) == transition_set(combined, state)


@settings(max_examples=100, deadline=None)
@given(p=small_programs("a"), q=small_programs("b"),
       start=st.sampled_from(DOMAIN), z=st.sampled_from(DOMAIN))
def test_sequential_is_parallel_with_restriction(p, q, start, z):
    guard = Predicate(lambda s, v=z: s["x"] == v, f"x={z}")
    sequential = p.sequential(q, guard)
    explicit = p.parallel(q.restrict(guard))
    state = State(x=start)
    assert transition_set(sequential, state) == transition_set(explicit, state)


@settings(max_examples=60, deadline=None)
@given(p=small_programs("a"), start=st.sampled_from(DOMAIN))
def test_refinement_is_reflexive(p, start):
    reach = reachable_invariant(p, [State(x=start)])
    assert refines_program(p, p, reach)


class TestRefinementTransitivity:
    def test_memory_family_chain(self, memory):
        """pm refines pn refines p — and pm refines p directly."""
        assert refines_program(memory.pm, memory.pn, memory.S_pm)
        assert refines_program(memory.pn, memory.p, memory.S_pn)
        assert refines_program(memory.pm, memory.p, memory.S_pm)


class TestToleranceHierarchy:
    """Masking ⇒ fail-safe ∧ nonmasking, with identical witnesses."""

    def check(self, program, faults, spec, invariant, span):
        assert is_masking_tolerant(program, faults, spec, invariant, span)
        assert is_failsafe_tolerant(program, faults, spec, invariant, span)
        assert is_nonmasking_tolerant(program, faults, spec, invariant, span)

    def test_memory_pm(self, memory):
        self.check(memory.pm, memory.fault_before_witness, memory.spec,
                   memory.S_pm, memory.T_pm)

    def test_tmr(self, tmr_model):
        assert is_masking_tolerant(
            tmr_model.tmr, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )
        assert is_failsafe_tolerant(
            tmr_model.tmr, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )
        # nonmasking requires convergence back to the invariant, which
        # TMR does not provide (the corrupted input is never repaired) —
        # the certificate-based nonmasking check is convergence-based,
        # so it is *not* implied here.  The semantic (true)*SPEC
        # membership still holds because masking computations are in
        # SPEC outright:
        from repro.core import semantic_tolerance_check

        assert semantic_tolerance_check(
            "nonmasking", tmr_model.tmr, tmr_model.faults, tmr_model.spec,
            tmr_model.span, max_length=7, max_faults=1,
        )

    def test_mutex(self, mutex):
        self.check(mutex.tolerant, mutex.faults, mutex.spec,
                   mutex.invariant, mutex.span)
