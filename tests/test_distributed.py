"""Distributed campaigns and censuses: determinism, leases, retries.

The load-bearing property is *unobservability*: for any worker count,
batch size, or arrival order — including workers that die mid-batch —
the merged verdict, the JSONL event log (modulo ``wall*`` keys), and
the census count are byte-identical to the single-process paths.
"""

import asyncio
import io
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaigns import (
    Campaign,
    DistributedCampaign,
    distributed_census,
    get_scenario,
    worker_loop,
)
from repro.campaigns.distributed import (
    CAMPAIGN_QUEUE,
    build_census_workload,
    compute_census_shard,
    decode_batch,
    decode_shard_reach,
    encode_batch,
    encode_shard_reach,
)
from repro.core import explore_codes
from repro.store import MemoryStore, RemoteStore
from repro.store.backend import with_retries
from repro.store.jobs import MAX_ATTEMPTS, JobBoard, JobClient, JobQueue
from repro.store.serve import StoreServer


# -- harness -------------------------------------------------------------------

class ServerThread:
    """A StoreServer on an ephemeral port, driven by a thread-owned loop."""

    def __init__(self, store=None):
        self.store = store if store is not None else MemoryStore()
        self.server = StoreServer(self.store, port=0)
        self.loop = asyncio.new_event_loop()
        self._thread = None

    def __enter__(self):
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert ready.wait(10)
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        # cancel any parked connection handlers before closing, or their
        # coroutines get garbage-collected mid-await
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.close()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.port}"


def start_workers(url, count, **kwargs):
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=worker_loop, args=(url,),
            kwargs=dict(stop=stop, lease_s=30.0,
                        worker_id=f"w{i}", **kwargs),
            daemon=True,
        )
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return stop, threads


def stripped_jsonl(buf):
    lines = []
    for line in buf.getvalue().splitlines():
        record = json.loads(line)
        record = {
            k: v for k, v in record.items() if not k.startswith("wall")
        }
        lines.append(json.dumps(record, sort_keys=True))
    return lines


SCENARIO = get_scenario("byzantine")
TRIALS, SEED = 6, 3


def run_direct():
    buf = io.StringIO()
    result = Campaign(SCENARIO, trials=TRIALS, seed=SEED, stream=buf).run()
    return result, stripped_jsonl(buf)


def run_distributed(url, **kwargs):
    buf = io.StringIO()
    campaign = DistributedCampaign(
        SCENARIO, trials=TRIALS, seed=SEED, stream=buf, base_url=url,
        deadline_s=120, **kwargs,
    )
    result = campaign.run()
    return campaign, result, stripped_jsonl(buf)


# -- job queue unit tests (injectable clock: no sleeping) ----------------------

class TestJobQueue:
    def setup_method(self):
        self.now = 0.0
        self.queue = JobQueue("q", clock=lambda: self.now)

    def test_lease_complete_round_trip(self):
        self.queue.submit({"n": 1}, "job-a", result_key="key-a")
        job = self.queue.lease("w1", lease_s=10)
        assert job.job_id == "job-a" and job.state == "leased"
        assert self.queue.lease("w2", lease_s=10) is None  # nothing pending
        assert self.queue.complete("job-a", "w1") == "done"
        assert self.queue.complete("job-a", "w1") == "already-done"
        counters = self.queue.counters()
        assert counters["done"] == 1 and counters["depth"] == 0
        assert counters["lease_misses"] == 1

    def test_idempotent_resubmit(self):
        self.queue.submit({"n": 1}, "job-a")
        self.queue.submit({"n": 1}, "job-a")
        counters = self.queue.counters()
        assert counters["submitted"] == 1 and counters["resubmitted"] == 1
        assert counters["depth"] == 1  # queued exactly once
        assert self.queue.lease("w1", 10).job_id == "job-a"
        assert self.queue.lease("w1", 10) is None

    def test_lease_expiry_requeues(self):
        self.queue.submit({"n": 1}, "job-a")
        job = self.queue.lease("w1", lease_s=5)
        assert job.leases == 1
        self.now = 4.9
        assert self.queue.lease("w2", lease_s=5) is None  # still leased
        self.now = 5.1
        job = self.queue.lease("w2", lease_s=5)  # reaped and re-issued
        assert job.job_id == "job-a" and job.worker == "w2"
        assert job.leases == 2
        assert self.queue.counters()["expired"] == 1

    def test_stale_worker_completion_wins(self):
        # the original worker outlives its lease but still finishes; the
        # result is content-addressed, so its completion counts
        self.queue.submit({"n": 1}, "job-a")
        self.queue.lease("w1", lease_s=5)
        self.now = 10.0
        self.queue.lease("w2", lease_s=5)  # re-issued to w2
        assert self.queue.complete("job-a", "w1") == "done"
        assert self.queue.complete("job-a", "w2") == "already-done"
        assert self.queue.counters()["done"] == 1

    def test_poison_job_parks_after_max_attempts(self):
        self.queue.submit({"n": 1}, "job-a")
        for attempt in range(MAX_ATTEMPTS):
            job = self.queue.lease("w1", lease_s=5)
            assert job is not None, f"attempt {attempt}"
            status = self.queue.fail("job-a", "w1", error="boom")
        assert status == "failed"
        assert self.queue.lease("w1", lease_s=5) is None
        assert self.queue.job("job-a").state == "failed"
        # an explicit resubmit gives a parked job a fresh chance
        self.queue.submit({"n": 1}, "job-a")
        assert self.queue.lease("w1", lease_s=5) is not None

    def test_board_status(self):
        board = JobBoard()
        board.submit("campaign", {"n": 1}, "job-a")
        board.lease("campaign", "w1", 10)
        status = board.status()
        assert status["campaign"]["leased"] == 1
        assert status["campaign"]["workers"] == 1


# -- retry policy (satellite: RemoteStore backoff) -----------------------------

class FlakyServer:
    """TCP stub that slams the door on the first ``failures`` connections,
    then answers every request with one canned HTTP 200."""

    def __init__(self, failures, body=b"artifact-bytes"):
        self.failures = failures
        self.body = body
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        self._sock.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            self.connections += 1
            if self.connections <= self.failures:
                # RST instead of FIN so the client sees a hard reset
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                conn.close()
                continue
            try:
                conn.recv(65536)
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Length: "
                    + str(len(self.body)).encode() + b"\r\n\r\n" + self.body
                )
            finally:
                conn.close()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5)
        self._sock.close()


class TestRetries:
    def test_with_retries_backs_off_exponentially(self):
        sleeps = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise OSError("transient")
            return "ok"

        class Rng:
            def uniform(self, lo, hi):
                return hi  # deterministic: always the full backoff

        assert with_retries(
            flaky, retries=3, backoff=0.1, sleep=sleeps.append, rng=Rng()
        ) == "ok"
        assert sleeps == [0.1, 0.2, 0.4]

    def test_with_retries_gives_up_and_raises(self):
        def always_down():
            raise ConnectionResetError("down")

        with pytest.raises(ConnectionResetError):
            with_retries(always_down, retries=2, sleep=lambda s: None)

    def test_http_errors_are_not_retried(self):
        calls = []

        def denied():
            calls.append(1)
            raise urllib.error.HTTPError("u", 500, "boom", {}, None)

        with pytest.raises(urllib.error.HTTPError):
            with_retries(denied, retries=3, sleep=lambda s: None)
        assert len(calls) == 1  # a definitive server answer: no retry

    def test_remote_store_rides_out_flaky_server(self):
        with FlakyServer(failures=2) as flaky:
            store = RemoteStore(
                f"http://127.0.0.1:{flaky.port}", timeout=5,
                retries=3, backoff=0.01,
            )
            assert store.get("cafe") == b"artifact-bytes"
            assert flaky.connections >= 3  # 2 resets + the success
            assert not store.dormant

    def test_remote_store_exhausted_retries_count_one_failure(self):
        with FlakyServer(failures=10**6) as flaky:
            store = RemoteStore(
                f"http://127.0.0.1:{flaky.port}", timeout=5,
                retries=2, backoff=0.01, max_failures=2,
            )
            assert store.get("cafe") is None
            assert store._failures == 1  # one failure per call, not per try
            assert store.get("cafe") is None
            assert store.dormant


# -- batch codec ---------------------------------------------------------------

class TestBatchCodec:
    def test_campaign_batch_round_trip(self):
        campaign = Campaign(SCENARIO, trials=3, seed=SEED, stream=None)
        items = [campaign._buffered_trial(t) for t in range(3)]
        blob = encode_batch(items)
        decoded = decode_batch(blob)
        assert len(decoded) == 3
        for (record, events), (record2, events2) in zip(items, decoded):
            assert record == record2
            assert events == events2

    def test_batch_schema_version_is_checked(self):
        import pickle
        import zlib

        blob = zlib.compress(pickle.dumps({"v": 999}))
        with pytest.raises(ValueError):
            decode_batch(blob)

    def test_shard_reach_round_trip(self):
        reach = compute_census_shard("token_ring", {"size": 4}, 1, 3)
        blob = encode_shard_reach(reach)
        reach2 = decode_shard_reach(blob)
        assert reach2.states == reach.states
        assert reach2.levels == reach.levels
        assert reach2.edges == reach.edges
        assert (reach2.codes == reach.codes).all()


# -- distributed campaign parity -----------------------------------------------

class TestDistributedCampaign:
    def test_parity_one_and_four_workers(self):
        result0, jsonl0 = run_direct()
        with ServerThread() as srv:
            stop, threads = start_workers(srv.url, 1)
            try:
                campaign1, result1, jsonl1 = run_distributed(
                    srv.url, batch_size=2
                )
            finally:
                stop.set()
                for t in threads:
                    t.join(10)
            assert not campaign1.degraded
            assert jsonl1 == jsonl0
            assert result1.verdict == result0.verdict

        with ServerThread() as srv:
            stop, threads = start_workers(srv.url, 4)
            try:
                campaign4, result4, jsonl4 = run_distributed(
                    srv.url, batch_size=1
                )
            finally:
                stop.set()
                for t in threads:
                    t.join(10)
            assert not campaign4.degraded
            assert jsonl4 == jsonl0
            assert result4.verdict == result0.verdict

    def test_worker_killed_mid_batch_is_re_leased(self):
        result0, jsonl0 = run_direct()
        with ServerThread() as srv:
            # a doomed worker leases the first batch with a short lease
            # and dies without completing or failing it
            client = JobClient(srv.url)
            submitted = threading.Event()

            def doomed():
                assert submitted.wait(30)
                leased = None
                while leased is None:
                    leased = client.lease(
                        CAMPAIGN_QUEUE, "doomed", lease_s=0.3
                    )
                # die: never complete, never fail

            saboteur = threading.Thread(target=doomed, daemon=True)
            saboteur.start()

            board = srv.server.board

            def real_worker():
                # hold back until the saboteur has swallowed a lease, so
                # the test genuinely exercises expiry + re-issue
                while board.status().get(CAMPAIGN_QUEUE, {}).get(
                    "leases", 0
                ) == 0:
                    submitted.set()
                    threading.Event().wait(0.02)
                worker_loop(srv.url, once=False, lease_s=30.0,
                            stop=stop, worker_id="survivor")

            stop = threading.Event()
            worker = threading.Thread(target=real_worker, daemon=True)
            worker.start()
            try:
                campaign, result, jsonl = run_distributed(
                    srv.url, batch_size=2
                )
            finally:
                stop.set()
                saboteur.join(10)
                worker.join(10)
            assert jsonl == jsonl0
            assert result.verdict == result0.verdict
            counters = board.status()[CAMPAIGN_QUEUE]
            assert counters["expired"] >= 1  # the doomed lease was reaped

    def test_rerun_is_served_from_store(self):
        _, jsonl0 = run_direct()
        with ServerThread() as srv:
            stop, threads = start_workers(srv.url, 1)
            try:
                campaign1, _, _ = run_distributed(srv.url, batch_size=2)
                campaign2, _, jsonl2 = run_distributed(
                    srv.url, batch_size=2
                )
            finally:
                stop.set()
                for t in threads:
                    t.join(10)
            assert campaign1.batches_from_store == 0
            assert campaign2.batches_total == campaign2.batches_from_store
            assert campaign2.batches_total > 0
            assert jsonl2 == jsonl0

    def test_degrades_gracefully_without_server(self):
        result0, jsonl0 = run_direct()
        campaign, result, jsonl = run_distributed("http://127.0.0.1:1")
        assert campaign.degraded
        assert jsonl == jsonl0
        assert result.verdict == result0.verdict


# -- distributed census --------------------------------------------------------

class TestDistributedCensus:
    def expected(self):
        program, starts, faults = build_census_workload(
            "token_ring", {"size": 4}
        )
        return explore_codes(program, starts, faults)

    def test_in_process_shards_merge_exactly(self):
        full = self.expected()
        for shards in (1, 3, 7):
            reach, stats = distributed_census(
                "token_ring", {"size": 4}, shards=shards,
                store=MemoryStore(),
            )
            assert reach.states == full.states, f"shards={shards}"
            assert stats["degraded"] and stats["computed"] == shards

    def test_distributed_parity_and_warm_rerun(self):
        full = self.expected()
        with ServerThread() as srv:
            stop, threads = start_workers(srv.url, 2)
            try:
                reach, stats = distributed_census(
                    "token_ring", {"size": 4}, shards=4,
                    base_url=srv.url, deadline_s=120,
                )
                # a killed worker's shard re-run lands here as a store
                # hit: every completed shard artifact is already present
                reach2, stats2 = distributed_census(
                    "token_ring", {"size": 4}, shards=4,
                    base_url=srv.url, deadline_s=120,
                )
            finally:
                stop.set()
                for t in threads:
                    t.join(10)
        assert reach.states == full.states
        assert not stats["degraded"]
        assert reach2.states == full.states
        assert stats2["from_store"] >= stats2["shards"] // 2
        assert stats2["from_store"] == 4  # in fact all of them

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(KeyError):
            build_census_workload("nope", {})


# -- server observability ------------------------------------------------------

class TestObservability:
    def test_healthz_and_queue_stats(self):
        with ServerThread() as srv:
            with urllib.request.urlopen(
                f"{srv.url}/healthz", timeout=5
            ) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"

            client = JobClient(srv.url)
            client.submit("campaign", {"kind": "noop"}, "job-a")
            client.lease("campaign", "w1", lease_s=30)
            with urllib.request.urlopen(
                f"{srv.url}/stats", timeout=5
            ) as response:
                stats = json.loads(response.read())
            queues = stats["queues"]
            assert queues["campaign"]["leased"] == 1
            assert queues["campaign"]["depth"] == 0
            line = srv.server.stats_line()
            assert "campaign:" in line and "leased 1" in line
