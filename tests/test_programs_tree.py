"""Tree maintenance — self-stabilizing BFS spanning tree."""

import pytest

from repro.core import TRUE, is_corrector, is_nonmasking_tolerant
from repro.programs import tree_maintenance
from repro.programs.tree_maintenance import DEFAULT_EDGES, build


@pytest.fixture(scope="module")
def tree():
    return build()


class TestTopologyValidation:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build(1, edges=())

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            build(3, edges=((0, 0), (0, 1), (1, 2)))

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            build(4, edges=((0, 1), (2, 3)))

    def test_isolated_node_rejected(self):
        with pytest.raises(ValueError):
            build(3, edges=((0, 1),))

    def test_true_distances(self, tree):
        assert tree.true_distances == {0: 0, 1: 1, 2: 1, 3: 2}


class TestStabilization:
    def test_nonmasking_from_anywhere(self, tree):
        assert is_nonmasking_tolerant(
            tree.program, tree.faults, tree.spec, tree.invariant, TRUE
        )

    def test_corrector_of_own_invariant(self, tree):
        assert is_corrector(tree.program, tree.invariant, tree.invariant, TRUE)

    def test_legitimate_states_are_quiescent(self, tree):
        """In the exact BFS tree with canonical parents, every guard is
        false — tree maintenance is demand-driven."""
        fixpoints = [
            s for s in tree.program.states()
            if tree.program.is_deadlocked(s)
        ]
        assert fixpoints
        assert all(tree.invariant(s) for s in fixpoints)

    def test_fake_short_distance_is_repaired(self, tree):
        """The classic hazard: a corrupted dist=0 deep in the graph
        attracts parents; the cap + recomputation still converge."""
        from repro.core import State
        from repro.sim import RoundRobinScheduler, convergence_steps

        corrupted = State(dist1=1, parent1=0, dist2=1, parent2=0,
                          dist3=0, parent3=2)
        steps = convergence_steps(
            tree.program, corrupted, tree.invariant, RoundRobinScheduler()
        )
        assert steps is not None

    def test_line_topology(self):
        line = build(4, edges=((0, 1), (1, 2), (2, 3)))
        assert is_nonmasking_tolerant(
            line.program, line.faults, line.spec, line.invariant, TRUE
        )

    def test_worst_case_convergence_bounded(self, tree):
        from repro.sim import worst_case_convergence_steps

        bound = worst_case_convergence_steps(
            tree.program, tree.program.states(), tree.invariant
        )
        assert 0 < bound <= 4 * tree.size * tree.size
