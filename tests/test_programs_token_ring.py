"""Dijkstra's token ring — self-stabilization as nonmasking tolerance."""

import pytest

from repro.core import TRUE, is_corrector, is_nonmasking_tolerant, refines_spec
from repro.programs import token_ring
from repro.sim import RoundRobinScheduler, convergence_steps, \
    worst_case_convergence_steps


class TestModel:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            token_ring.build(1)

    def test_k_must_cover_ring(self):
        with pytest.raises(ValueError):
            token_ring.build(4, k=2)

    def test_k_one_below_n_is_allowed(self):
        """The refined bound: K = n - 1 stabilizes (verified in the
        ablation tests)."""
        model = token_ring.build(4, k=3)
        assert model.k == 3

    def test_token_predicates(self, ring):
        from repro.core import State

        uniform = State(x0=0, x1=0, x2=0, x3=0)
        holders = [i for i, t in ring.tokens.items() if t(uniform)]
        assert holders == [0], "uniform configuration: only P0 has the token"

    def test_legitimate_states_count(self, ring):
        """Exactly-one-token states: all-equal configurations (token at
        P0) plus single-boundary configurations (token at some i > 0) —
        K + (n-1)·K·(K-1) in total."""
        count = sum(1 for s in ring.ring.states() if ring.invariant(s))
        n, k = ring.size, ring.k
        assert count == k + (n - 1) * k * (k - 1)


class TestPaperClaims:
    def test_refines_spec_from_invariant(self, ring):
        assert refines_spec(ring.ring, ring.spec, ring.invariant)

    def test_nonmasking_from_anywhere(self, ring):
        assert is_nonmasking_tolerant(
            ring.ring, ring.faults, ring.spec, ring.invariant, TRUE
        )

    def test_is_corrector_of_own_invariant(self, ring):
        """The Arora–Gouda special case: witness = correction
        predicate = the invariant."""
        assert is_corrector(ring.ring, ring.invariant, ring.invariant, TRUE)

    @pytest.mark.parametrize("size", [3, 5])
    def test_scales(self, size):
        model = token_ring.build(size)
        assert is_nonmasking_tolerant(
            model.ring, model.faults, model.spec, model.invariant, TRUE
        )


class TestConvergenceMeasurement:
    def test_round_robin_converges(self, ring):
        start = next(
            s for s in ring.ring.states() if not ring.invariant(s)
        )
        steps = convergence_steps(
            ring.ring, start, ring.invariant, RoundRobinScheduler()
        )
        assert steps is not None and steps >= 1

    def test_worst_case_bound_is_quadratic_ish(self, ring):
        bound = worst_case_convergence_steps(
            ring.ring, ring.ring.states(), ring.invariant
        )
        assert 0 < bound <= 3 * ring.size * ring.size, (
            "Dijkstra's ring stabilizes within O(n²) moves"
        )

    def test_worst_case_grows_with_ring(self):
        small = token_ring.build(3)
        large = token_ring.build(5)
        b_small = worst_case_convergence_steps(
            small.ring, small.ring.states(), small.invariant
        )
        b_large = worst_case_convergence_steps(
            large.ring, large.ring.states(), large.invariant
        )
        assert b_large > b_small
