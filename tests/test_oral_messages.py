"""Tests for the OM(m) substrate (general Byzantine agreement)."""

import itertools

import pytest

from repro.programs.oral_messages import (
    check_agreement,
    check_validity,
    constant_lie_strategy,
    honest_strategy,
    random_strategy,
    run_oral_messages,
    split_strategy,
)


class TestValidation:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            run_oral_messages(1, 0)

    def test_negative_rounds(self):
        with pytest.raises(ValueError):
            run_oral_messages(4, -1)

    def test_byzantine_ids_validated(self):
        with pytest.raises(ValueError):
            run_oral_messages(4, 1, byzantine=(9,))


class TestFaultFree:
    @pytest.mark.parametrize("n,m", [(2, 0), (4, 1), (7, 2)])
    def test_everyone_decides_the_generals_value(self, n, m):
        run = run_oral_messages(n, m, general_value=1)
        assert check_agreement(run) and check_validity(run)
        assert all(v == 1 for v in run.decisions.values())

    def test_om0_is_plain_broadcast(self):
        run = run_oral_messages(5, 0, general_value=0)
        assert run.rounds == 1
        assert run.messages_sent == 4


class TestSingleByzantine:
    """n = 4, f = 1 — the paper's configuration, exhaustively over the
    Byzantine process and a strategy battery."""

    strategies = [
        constant_lie_strategy(0),
        constant_lie_strategy(1),
        split_strategy(),
        split_strategy((1, 0)),
        random_strategy(3),
    ]

    @pytest.mark.parametrize("byzantine", [0, 1, 2, 3])
    @pytest.mark.parametrize("value", [0, 1])
    def test_ic1_ic2(self, byzantine, value):
        for strategy in self.strategies:
            run = run_oral_messages(
                4, 1, general_value=value,
                byzantine=(byzantine,), strategy=strategy,
            )
            assert check_agreement(run)
            assert check_validity(run)

    def test_byzantine_general_forces_common_default_or_value(self):
        run = run_oral_messages(
            4, 1, byzantine=(0,), strategy=split_strategy()
        )
        assert check_agreement(run)


class TestTwoByzantine:
    @pytest.mark.parametrize(
        "byzantine", list(itertools.combinations(range(7), 2))[:10]
    )
    def test_n7_f2(self, byzantine):
        for seed in range(3):
            run = run_oral_messages(
                7, 2, general_value=1,
                byzantine=byzantine, strategy=random_strategy(seed),
            )
            assert check_agreement(run)
            assert check_validity(run)

    def test_insufficient_rounds_fail(self):
        """OM(1) with two Byzantine processes can be defeated."""
        violated = False
        for byzantine in itertools.combinations(range(7), 2):
            for strategy in (split_strategy(), constant_lie_strategy(0)):
                run = run_oral_messages(
                    7, 1, general_value=1,
                    byzantine=byzantine, strategy=strategy,
                )
                if not (check_agreement(run) and check_validity(run)):
                    violated = True
        assert violated


class TestThreshold:
    def test_n3_f1_fails_validity(self):
        """The classical impossibility: with n = 3 a lying lieutenant
        forces the honest one into a tie, breaking validity."""
        run = run_oral_messages(
            3, 1, general_value=1, byzantine=(2,),
            strategy=constant_lie_strategy(0),
        )
        assert not check_validity(run)

    def test_n4_f1_succeeds_where_n3_fails(self):
        run = run_oral_messages(
            4, 1, general_value=1, byzantine=(3,),
            strategy=constant_lie_strategy(0),
        )
        assert check_validity(run) and check_agreement(run)


class TestComplexityShape:
    def test_messages_grow_exponentially_in_rounds(self):
        m1 = run_oral_messages(7, 1).messages_sent
        m2 = run_oral_messages(7, 2).messages_sent
        assert m2 > 3 * m1

    def test_honest_strategy_is_identity(self):
        assert honest_strategy(1, 2, (0, 1), 7) == 7
