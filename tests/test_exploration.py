"""Unit tests for transition-system exploration."""

import pytest

from repro.core.action import Action, assign
from repro.core.exploration import (
    TransitionSystem,
    clear_system_cache,
    explored_system,
)
from repro.core.faults import set_variable
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.state import State, Variable


def chain(limit: int = 3) -> Program:
    return Program(
        [Variable("x", list(range(limit + 1)))],
        [
            Action(
                "inc",
                Predicate(lambda s, lim=limit: s["x"] < lim, f"x<{limit}"),
                assign(x=lambda s: s["x"] + 1),
            )
        ],
        name="chain",
    )


class TestExploration:
    def test_reachable_states(self):
        ts = TransitionSystem(chain(3), [State(x=1)])
        assert {s["x"] for s in ts.states} == {1, 2, 3}

    def test_edges(self):
        ts = TransitionSystem(chain(2), [State(x=0)])
        edges = list(ts.all_edges())
        assert (State(x=0), "inc", State(x=1)) in edges
        assert len(edges) == 2

    def test_start_states_deduplicated(self):
        ts = TransitionSystem(chain(1), [State(x=0), State(x=0)])
        assert ts.start_states == (State(x=0),)

    def test_max_states_guard(self):
        with pytest.raises(RuntimeError, match="max_states"):
            TransitionSystem(chain(50), [State(x=0)], max_states=5)

    def test_deadlock_states(self):
        ts = TransitionSystem(chain(2), [State(x=0)])
        assert ts.deadlock_states() == [State(x=2)]

    def test_fault_edges_tracked_separately(self):
        fault = set_variable("x", 0)
        ts = TransitionSystem(
            chain(2), [State(x=0)], fault_actions=list(fault.actions)
        )
        assert ts.fault_edges_from(State(x=2))
        assert not any(
            name.startswith("fault") for name, _ in ts.program_edges_from(State(x=2))
        )

    def test_fault_name_collision_rejected(self):
        rogue = Action("inc", TRUE, assign(x=0))
        with pytest.raises(ValueError, match="share names"):
            TransitionSystem(chain(1), [State(x=0)], fault_actions=[rogue])

    def test_states_satisfying(self):
        ts = TransitionSystem(chain(3), [State(x=0)])
        assert len(ts.states_satisfying(Predicate(lambda s: s["x"] > 1))) == 2


class TestExploredSystemCache:
    def test_failed_exploration_is_not_cached(self):
        """A ``max_states`` overflow must not poison the memo: the same
        call retried with a larger budget succeeds, and the overflowing
        budget keeps raising (a success at one budget must not be
        returned for a stricter one)."""
        clear_system_cache()
        program = chain(50)
        starts = [State(x=0)]
        try:
            with pytest.raises(RuntimeError, match="max_states"):
                explored_system(program, starts, max_states=5)
            ts = explored_system(program, starts, max_states=500)
            assert len(ts.states) == 51
            # the successful system is memoized under its own budget...
            assert explored_system(program, starts, max_states=500) is ts
            # ...and the failing budget still fails rather than hitting
            # a stale or partially-explored cache entry
            with pytest.raises(RuntimeError, match="max_states"):
                explored_system(program, starts, max_states=5)
        finally:
            clear_system_cache()


class TestClosure:
    def test_closed_predicate(self):
        ts = TransitionSystem(chain(3), [State(x=0)])
        assert ts.is_closed(Predicate(lambda s: s["x"] >= 0, "x≥0"))

    def test_open_predicate_gives_transition_counterexample(self):
        ts = TransitionSystem(chain(3), [State(x=0)])
        result = ts.is_closed(Predicate(lambda s: s["x"] <= 1, "x≤1"))
        assert not result
        assert result.counterexample.kind == "transition"
        assert result.counterexample.states[0] == State(x=1)

    def test_closure_with_faults(self):
        fault = set_variable("x", 0)
        ts = TransitionSystem(
            chain(2), [State(x=1)], fault_actions=list(fault.actions)
        )
        nonzero = Predicate(lambda s: s["x"] >= 1, "x≥1")
        assert ts.is_closed(nonzero, include_faults=False)
        assert not ts.is_closed(nonzero, include_faults=True)

    def test_fault_span(self):
        fault = set_variable("x", 0)
        ts = TransitionSystem(
            chain(2), [State(x=0)], fault_actions=list(fault.actions)
        )
        assert ts.is_fault_span(TRUE, Predicate(lambda s: s["x"] == 0, "x=0"))
        # invariant not inside the span -> state counterexample
        result = ts.is_fault_span(
            Predicate(lambda s: s["x"] == 2, "x=2"),
            Predicate(lambda s: s["x"] == 0, "x=0"),
        )
        assert not result
        assert result.counterexample.kind == "state"


class TestFindPath:
    def test_simple_path(self):
        ts = TransitionSystem(chain(3), [State(x=0)])
        states, actions = ts.find_path(
            [State(x=0)], Predicate(lambda s: s["x"] == 2)
        )
        assert [s["x"] for s in states] == [0, 1, 2]
        assert actions == ["inc", "inc"]

    def test_within_restriction_blocks(self):
        ts = TransitionSystem(chain(3), [State(x=0)])
        path = ts.find_path(
            [State(x=0)],
            Predicate(lambda s: s["x"] == 3),
            within=Predicate(lambda s: s["x"] != 2, "x≠2"),
        )
        assert path is None

    def test_goal_at_source(self):
        ts = TransitionSystem(chain(3), [State(x=0)])
        states, actions = ts.find_path([State(x=0)], Predicate(lambda s: True))
        assert states == [State(x=0)] and actions == []

    def test_unreachable_goal(self):
        ts = TransitionSystem(chain(3), [State(x=2)])
        assert ts.find_path([State(x=2)], Predicate(lambda s: s["x"] == 0)) is None

    def test_path_through_fault_edges_optional(self):
        fault = set_variable("x", 0)
        ts = TransitionSystem(
            chain(2), [State(x=1)], fault_actions=list(fault.actions)
        )
        goal = Predicate(lambda s: s["x"] == 0)
        assert ts.find_path([State(x=1)], goal, include_faults=True) is not None
        assert ts.find_path([State(x=1)], goal, include_faults=False) is None
