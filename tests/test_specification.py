"""Unit tests for specifications: graph and sequence semantics."""

from repro.core.action import Action, assign
from repro.core.exploration import TransitionSystem
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.specification import (
    LeadsTo,
    Spec,
    StateInvariant,
    TransitionInvariant,
    closure_spec,
    converges_spec,
    generalized_pair,
    invariant_spec,
    maintains,
)
from repro.core.state import State, Variable

X = lambda v: Predicate(lambda s, v=v: s["x"] == v, name=f"x={v}")  # noqa: E731


def seq(*values):
    return [State(x=v) for v in values]


class TestStateInvariant:
    def test_sequence_semantics(self):
        component = StateInvariant(Predicate(lambda s: s["x"] < 3, "x<3"))
        assert component.holds_on(seq(0, 1, 2))
        assert not component.holds_on(seq(0, 3))

    def test_graph_semantics(self):
        inc = Action("inc", Predicate(lambda s: s["x"] < 2),
                     assign(x=lambda s: s["x"] + 1))
        p = Program([Variable("x", [0, 1, 2])], [inc])
        ts = TransitionSystem(p, [State(x=0)])
        assert StateInvariant(Predicate(lambda s: s["x"] <= 2)).check(ts)
        result = StateInvariant(Predicate(lambda s: s["x"] <= 1, "x≤1")).check(ts)
        assert not result and result.counterexample.kind == "state"


class TestTransitionInvariant:
    def test_sequence_semantics(self):
        monotone = TransitionInvariant(
            lambda s, t: t["x"] >= s["x"], name="monotone"
        )
        assert monotone.holds_on(seq(0, 1, 1, 2))
        assert not monotone.holds_on(seq(1, 0))

    def test_single_state_sequence_trivially_holds(self):
        monotone = TransitionInvariant(lambda s, t: False, name="never")
        assert monotone.holds_on(seq(5))

    def test_graph_checks_fault_edges(self):
        from repro.core.faults import set_variable

        inc = Action("inc", Predicate(lambda s: s["x"] < 2),
                     assign(x=lambda s: s["x"] + 1))
        p = Program([Variable("x", [0, 1, 2])], [inc])
        fault = set_variable("x", 0)
        ts = TransitionSystem(p, [State(x=0)], fault_actions=list(fault.actions))
        monotone = TransitionInvariant(lambda s, t: t["x"] >= s["x"], "monotone")
        result = monotone.check(ts)
        assert not result, "the fault edge decreases x"


class TestLeadsTo:
    def test_sequence_obligation_discharged(self):
        component = LeadsTo(X(0), X(2))
        assert component.holds_on(seq(0, 1, 2), complete=True)

    def test_sequence_obligation_pending_complete_fails(self):
        component = LeadsTo(X(0), X(2))
        assert not component.holds_on(seq(0, 1), complete=True)

    def test_sequence_obligation_pending_prefix_optimistic(self):
        component = LeadsTo(X(0), X(2))
        assert component.holds_on(seq(0, 1), complete=False)

    def test_immediate_target_counts(self):
        component = LeadsTo(X(0), X(0))
        assert component.holds_on(seq(0, 1), complete=True)

    def test_reraised_obligation(self):
        component = LeadsTo(X(0), X(2))
        assert not component.holds_on(seq(0, 2, 0), complete=True)


class TestSpec:
    def make(self):
        return Spec(
            [
                StateInvariant(Predicate(lambda s: s["x"] <= 3, "x≤3")),
                TransitionInvariant(lambda s, t: t["x"] >= s["x"], "monotone"),
                LeadsTo(TRUE, X(2)),
            ],
            name="toy_spec",
        )

    def test_parts(self):
        spec = self.make()
        assert len(spec.safety_part().components) == 2
        assert len(spec.liveness_part().components) == 1
        assert spec.masking() is spec

    def test_conjoin(self):
        spec = self.make().conjoin(invariant_spec(TRUE))
        assert len(spec.components) == 4

    def test_holds_on(self):
        spec = self.make()
        assert spec.holds_on(seq(0, 1, 2), complete=True)
        assert not spec.holds_on(seq(0, 1), complete=True)

    def test_holds_on_some_suffix(self):
        spec = Spec([StateInvariant(X(2))], name="always2")
        assert spec.holds_on_some_suffix(seq(0, 1, 2, 2))
        assert not spec.holds_on_some_suffix(seq(0, 1, 2, 1))

    def test_maintains_prefix_ignores_liveness(self):
        spec = self.make()
        assert spec.maintains_prefix(seq(0, 1)), "pending leads-to is fine"
        assert not spec.maintains_prefix(seq(1, 0)), "monotone already broken"
        assert maintains(seq(0, 1), spec)


class TestFactories:
    def test_closure_spec(self):
        spec = closure_spec(X(1))
        assert spec.holds_on(seq(0, 1, 1), complete=True)
        assert not spec.holds_on(seq(1, 0), complete=True)

    def test_generalized_pair(self):
        spec = generalized_pair(X(0), X(1))
        assert spec.holds_on(seq(0, 1, 2), complete=True)
        assert not spec.holds_on(seq(0, 2), complete=True)

    def test_converges_spec(self):
        spec = converges_spec(Predicate(lambda s: s["x"] >= 1, "x≥1"), X(2))
        assert spec.holds_on(seq(1, 2, 2), complete=True)
        # leaves cl(origin)
        assert not spec.holds_on(seq(1, 0), complete=True)
        # never reaches the goal
        assert not spec.holds_on(seq(1, 1), complete=True)

    def test_paper_identity_pair_equals_closure(self):
        """({S},{S}) = cl(S) (noted in Section 2.2)."""
        pair = generalized_pair(X(1), X(1))
        closure = closure_spec(X(1))
        for trial in [seq(0, 1, 1), seq(1, 0), seq(1, 1, 0), seq(0, 0)]:
            assert pair.holds_on(trial) == closure.holds_on(trial)

    def test_invariant_spec(self):
        spec = invariant_spec(X(1))
        assert spec.holds_on(seq(1, 1))
        assert not spec.holds_on(seq(1, 2))
