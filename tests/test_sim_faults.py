"""Regression tests for the simulation fault injectors.

The injectors schedule at absolute instants; arming one after the
simulator has advanced past its instant used to compute a negative
delay and crash in ``Simulator.schedule``.  Now the delay clamps to
zero: a late-armed injector fires immediately.
"""

import pytest

from repro.sim import (
    ChannelConfig,
    CrashInjector,
    MessageLossBurst,
    Network,
    RestartInjector,
    SimProcess,
    StateCorruptionInjector,
    TamperingIntruder,
)


class Counter(SimProcess):
    def __init__(self, pid):
        super().__init__(pid)
        self.count = 0

    def on_start(self):
        self.set_timer("tick", 1.0)

    def on_timer(self, name):
        self.count += 1
        self.set_timer("tick", 1.0)


def advanced_network(until=10.0):
    network = Network(seed=0)
    network.add_process(Counter("a"))
    network.add_process(Counter("b"))
    network.run(until=until)
    return network


class TestLateArming:
    def test_crash_injector_in_the_past_fires_immediately(self):
        network = advanced_network(until=10.0)
        CrashInjector(time=3.0, pid="a").arm(network)  # 3.0 < now
        network.run(until=11.0)
        assert network.processes["a"].crashed
        crash_times = [e.time for e in network.events("crash")]
        assert crash_times == [10.0]

    def test_restart_injector_in_the_past_fires_immediately(self):
        network = advanced_network(until=10.0)
        network.crash("a")
        RestartInjector(time=2.0, pid="a").arm(network)
        network.run(until=11.0)
        assert not network.processes["a"].crashed

    def test_corruption_injector_in_the_past_fires_immediately(self):
        network = advanced_network(until=10.0)
        StateCorruptionInjector.of(1.0, "a", count=99).arm(network)
        network.run(until=11.0)
        assert network.events("corrupt")

    def test_loss_burst_straddling_now_is_partially_applied(self):
        network = advanced_network(until=10.0)
        # started in the past, ends in the future: lossy now, restored later
        MessageLossBurst(start=8.0, duration=4.0, source="a",
                         destination="b").arm(network)
        network.run(until=10.5)
        assert network.channel("a", "b").loss_probability == 1.0
        network.run(until=13.0)
        assert network.channel("a", "b").loss_probability == 0.0

    def test_tampering_window_in_the_past_installs_and_removes(self):
        network = advanced_network(until=10.0)
        TamperingIntruder(
            start=1.0, duration=2.0, source="a", destination="b",
            transform=lambda m: m,
        ).arm(network)
        # both instants are in the past: install then remove, immediately
        network.run(until=10.5)
        assert not network._tamperers

    def test_future_arming_still_waits(self):
        network = advanced_network(until=10.0)
        CrashInjector(time=15.0, pid="b").arm(network)
        network.run(until=14.0)
        assert not network.processes["b"].crashed
        network.run(until=16.0)
        assert network.processes["b"].crashed
