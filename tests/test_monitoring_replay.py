"""Acceptance: campaign-log replay parity.

Replaying a recorded token-ring campaign JSONL through the incremental
frame-aware runtime must produce a syndrome stream identical to offline
whole-state bank evaluation of the same trace — the online path's
dirty-mask bookkeeping is an optimization, never a semantic change.
"""

import io
import json

import pytest

from repro.campaigns import Campaign, get_scenario, read_events
from repro.core.regions import StateIndex
from repro.core.state import State, state_space
from repro.monitoring import (
    MonitorRuntime,
    campaign_bank,
    iter_campaign_events,
)


@pytest.fixture(scope="module")
def campaign_log(tmp_path_factory):
    """A real recorded token-ring campaign JSONL log."""
    path = tmp_path_factory.mktemp("replay") / "token_ring.jsonl"
    with open(path, "w", encoding="utf-8") as stream:
        Campaign(
            get_scenario("token_ring"), trials=5, seed=17, stream=stream
        ).run()
    return path


def offline_syndromes(bank, events):
    """Whole-state evaluation: rebuild the full state after every event
    and ask the bank for its syndrome from scratch (no dirty masks, no
    incremental reuse — the State/Predicate path end to end)."""
    initial = {v.name: v.domain[0] for v in bank.variables}
    current = dict(initial)
    stream = []
    for event in events:
        if event.get("kind") == "reset":
            current = dict(initial)
        writes = event.get("writes")
        if writes:
            for name, value in writes.items():
                if name in current:
                    current[name] = value
        stream.append(bank.syndrome(State(current)))
    return stream


class TestReplayParity:
    def test_online_stream_equals_offline_whole_state_evaluation(
        self, campaign_log
    ):
        events = list(iter_campaign_events(campaign_log))
        assert len(events) > 20, "campaign produced a real event stream"

        bank = campaign_bank()
        runtime = MonitorRuntime(bank)
        online = [runtime.feed(event) for event in events]

        offline = offline_syndromes(campaign_bank(), events)
        assert online == offline

    def test_online_stream_matches_region_row_evaluation(self, campaign_log):
        """Third path: the big-int rows over the 4-state universe give
        the same syndrome for every state the replay visits."""
        bank = campaign_bank()
        index = StateIndex(state_space(bank.variables), _distinct=True)
        by_state = {
            index.states[i].values_tuple: syndrome
            for i, syndrome in bank.syndrome_table(index)
        }
        runtime = MonitorRuntime(bank)
        for event in iter_campaign_events(campaign_log):
            syndrome = runtime.feed(event)
            key = tuple(
                runtime.values()[name] for name in bank.schema.names
            )
            assert syndrome == by_state[key]

    def test_replay_sees_faults_before_their_detections(self, campaign_log):
        """The runner logs a trial's faults after its transitions; the
        replay source re-interleaves by simulation time so latency
        windows open before they close."""
        last_time = None
        for event in iter_campaign_events(campaign_log):
            if event["kind"] == "reset":
                last_time = None
                continue
            if last_time is not None:
                assert event["time"] >= last_time
            last_time = event["time"]

    def test_detection_latency_recorded_on_replay(self, campaign_log):
        bank = campaign_bank()
        runtime = MonitorRuntime(bank)
        runtime.drain(iter_campaign_events(campaign_log))
        # the token-ring scenario at this seed injects faults and loses
        # legitimacy: at least one latency window must have closed
        assert runtime.telemetry.latencies
        assert all(latency >= 0 for latency in runtime.telemetry.latencies)

    def test_replay_is_deterministic(self, campaign_log):
        def run():
            runtime = MonitorRuntime(campaign_bank())
            runtime.drain(iter_campaign_events(campaign_log))
            summary = runtime.telemetry.summary(runtime.events)
            summary.pop("wall_s")
            summary.pop("events_per_sec")
            return summary

        assert run() == run()


class TestMonitorCli:
    def test_monitor_replay_cli(self, campaign_log, tmp_path):
        from repro.cli import main

        out = io.StringIO()
        telemetry_path = tmp_path / "telemetry.jsonl"
        rc = main(
            ["monitor", "--replay", str(campaign_log),
             "--out", str(telemetry_path)],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "== monitor:" in text
        assert "final syndrome:" in text
        records = [
            json.loads(line)
            for line in telemetry_path.read_text().strip().splitlines()
        ]
        assert records[-1]["event"] == "monitor_summary"
        assert all("schema_version" in r for r in records)

    def test_monitor_events_cli(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"time": 1.0, "kind": "fault"}\n'
            '{"time": 2.0, "writes": {"safety": false}}\n'
        )
        out = io.StringIO()
        rc = main(["monitor", "--events", str(path)], out=out)
        assert rc == 0
        text = out.getvalue()
        # the CLI registers a single-bit corrector per detector, so the
        # safety flip decodes exactly and the latency window closes
        assert "1 corrections" in text
        assert "safety_violated" in text
        assert "(n=1)" in text

    def test_monitor_requires_a_source(self):
        from repro.cli import main

        out = io.StringIO()
        assert main(["monitor"], out=out) == 2

    def test_campaign_report_cli(self, campaign_log):
        from repro.cli import main

        out = io.StringIO()
        rc = main(["campaign", "--report", str(campaign_log)], out=out)
        assert rc == 0
        assert "== campaign token_ring:" in out.getvalue()

    def test_campaign_report_missing_summary(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "truncated.jsonl"
        path.write_text('{"event": "campaign_start", "seed": 0}\n')
        out = io.StringIO()
        assert main(["campaign", "--report", str(path)], out=out) == 1
