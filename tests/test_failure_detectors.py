"""The Chandra–Toueg comparison (Section 7), mechanically."""

import pytest

from repro.core import is_detector
from repro.core.fairness import check_leads_to
from repro.failure_detectors import build, run_crash_experiment


@pytest.fixture(scope="module")
def fd():
    return build(limit=2)


class TestModelClaims:
    def test_is_a_detector_of_the_timeout_predicate(self, fd):
        """The failure detector is literally an instantiation of the
        paper's detector component."""
        assert is_detector(fd.program, fd.suspected, fd.timed_out, fd.from_)

    def test_completeness(self, fd):
        """crashed leads-to suspected, under the crash fault."""
        ts = fd.faults.system(fd.program, fd.from_)
        assert check_leads_to(ts, fd.crashed, fd.suspected)

    def test_strong_accuracy_refuted(self, fd):
        """'suspect detects crashed' fails Safeness: the model checker
        exhibits the asynchrony counterexample (slow ≠ dead)."""
        result = is_detector(fd.program, fd.suspected, fd.crashed, fd.from_)
        assert not result
        assert result.counterexample is not None

    def test_eventual_accuracy(self, fd):
        """A false suspicion is eventually retracted."""
        ts = fd.faults.system(fd.program, fd.from_)
        assert check_leads_to(
            ts, fd.suspected & ~fd.crashed, ~fd.suspected | fd.crashed
        )

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            build(limit=0)


class TestSimulatedExperiment:
    def test_detection_after_crash(self):
        result = run_crash_experiment(timeout=3.0)
        assert result.detection_latency is not None
        assert result.detection_latency >= 0

    def test_timeout_tradeoff_shape(self):
        """The classic curve: longer timeouts mean higher detection
        latency but no more false suspicions than shorter ones."""
        noisy = dict(jitter=0.5, loss_probability=0.1, seed=3)
        short = run_crash_experiment(timeout=1.2, **noisy)
        long_ = run_crash_experiment(timeout=8.0, **noisy)
        assert long_.detection_latency >= short.detection_latency
        assert long_.false_suspicions <= short.false_suspicions

    def test_no_false_suspicions_on_clean_network(self):
        result = run_crash_experiment(timeout=3.0, jitter=0.0,
                                      loss_probability=0.0)
        assert result.false_suspicions == 0

    def test_row_rendering(self):
        row = run_crash_experiment(timeout=3.0).as_row()
        assert "timeout" in row and "latency" in row
