"""Tests for the fast state-space core.

Three groups, mirroring the optimization layers:

1. the schema-backed :class:`State` fast path must be observationally
   identical to the original mapping representation (equality, hashing,
   pickling, assign/extend/project, membership);
2. the exploration-layer caches (``edges_from`` zero-copy,
   ``states_satisfying`` memoization, the ``explored_system`` LRU) must
   return correct — and where promised, pointer-identical — results;
3. parallel campaign execution must be byte-identical to serial
   execution modulo wall-clock fields, for every bundled scenario.
"""

import io
import json
import pickle

import pytest

from repro.core.action import Action, assign
from repro.core.exploration import (
    TransitionSystem,
    clear_system_cache,
    explored_system,
)
from repro.core.predicate import Predicate, var_eq
from repro.core.program import Program
from repro.core.state import Schema, State, StateInterner, Variable, state_space


# ---------------------------------------------------------------------------
# 1. State fast path
# ---------------------------------------------------------------------------

class TestSchema:
    def test_interned_per_name_set(self):
        assert Schema.of(("x", "y")) is Schema.of(("y", "x"))
        assert Schema.of(("x", "y")) is not Schema.of(("x", "z"))

    def test_names_sorted(self):
        assert Schema.of(("b", "a", "c")).names == ("a", "b", "c")

    def test_index_matches_names(self):
        schema = Schema.of(("b", "a"))
        assert [schema.names[i] for i in (schema.index["a"], schema.index["b"])] \
            == ["a", "b"]

    def test_pickle_reinterns(self):
        schema = Schema.of(("x", "y"))
        assert pickle.loads(pickle.dumps(schema)) is schema


class TestStateParity:
    """Schema-backed states vs. states built from plain mappings."""

    def test_kwargs_and_mapping_constructors_agree(self):
        assert State(x=1, y=2) == State({"y": 2, "x": 1})
        assert hash(State(x=1, y=2)) == hash(State({"y": 2, "x": 1}))

    def test_schema_shared_between_constructions(self):
        assert State(x=1, y=2).schema is State({"y": 2, "x": 1}).schema

    def test_equality_with_plain_mapping(self):
        assert State(x=1, y=2) == {"x": 1, "y": 2}
        assert State(x=1, y=2) != {"x": 1, "y": 3}
        assert State(x=1, y=2) != {"x": 1}

    def test_state_space_states_equal_mapping_states(self):
        states = list(state_space([Variable("y", [0, 1]), Variable("x", [5])]))
        assert State(x=5, y=0) in states
        built = next(s for s in states if s == State(x=5, y=1))
        assert hash(built) == hash(State(x=5, y=1))
        assert built.schema is State(x=5, y=1).schema

    def test_pickle_roundtrip(self):
        original = State(x=1, y="v")
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert hash(clone) == hash(original)
        assert clone.schema is original.schema

    def test_values_tuple_in_schema_order(self):
        state = State(b=2, a=1)
        assert state.values_tuple == (1, 2)
        assert state.schema.names == ("a", "b")

    def test_getitem_and_contains(self):
        state = State(x=1, y=2)
        assert state["x"] == 1 and state["y"] == 2
        assert "x" in state and "z" not in state
        with pytest.raises(KeyError):
            state["z"]

    def test_items_and_iteration(self):
        state = State(b=2, a=1)
        assert dict(state) == {"a": 1, "b": 2}
        assert state.items() == (("a", 1), ("b", 2))


class TestStateUpdates:
    def test_assign_single(self):
        state = State(x=1, y=2)
        updated = state.assign(y=9)
        assert updated == State(x=1, y=9)
        assert state == State(x=1, y=2)  # immutable

    def test_assign_multiple(self):
        assert State(x=1, y=2, z=3).assign(x=0, z=0) == State(x=0, y=2, z=0)

    def test_assign_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            State(x=1).assign(q=0)
        with pytest.raises(KeyError):
            State(x=1, y=2).assign(x=0, q=0)

    def test_assign_preserves_schema(self):
        state = State(x=1, y=2)
        assert state.assign(x=5).schema is state.schema

    def test_extend_adds_and_rejects_duplicates(self):
        assert State(x=1).extend(y=2) == State(x=1, y=2)
        with pytest.raises(KeyError):
            State(x=1).extend(x=2)

    def test_project(self):
        state = State(x=1, y=2, z=3)
        assert state.project(["y", "x"]) == State(x=1, y=2)
        assert state.project(["y"]).schema is State(y=2).schema


class TestStateInterner:
    def test_canonical_identity(self):
        interner = StateInterner()
        a = State(x=1, y=2)
        b = State({"y": 2, "x": 1})
        assert a is not b
        assert interner.canonical(a) is a
        assert interner.canonical(b) is a  # same value -> same object

    def test_seeded(self):
        seed = State(x=1)
        interner = StateInterner([seed])
        assert interner.canonical(State(x=1)) is seed
        assert State(x=1) in interner and len(interner) == 1

    def test_exploration_states_are_interned(self):
        program = _counter_program()
        ts = TransitionSystem(program, [State(x=0)])
        by_value = {}
        for state in ts.states:
            assert by_value.setdefault(state, state) is state
        for state, edges in ((s, ts.edges_from(s)) for s in ts.states):
            for _, nxt in edges:
                assert by_value[nxt] is nxt


# ---------------------------------------------------------------------------
# 2. exploration-layer caches
# ---------------------------------------------------------------------------

def _counter_program(limit: int = 3) -> Program:
    return Program(
        variables=[Variable("x", range(limit + 1))],
        actions=[
            Action(
                "inc",
                Predicate(lambda s, n=limit: s["x"] < n, name=f"x<{limit}"),
                assign(x=lambda s: s["x"] + 1),
            )
        ],
        name="counter",
    )


def _fault_action() -> Action:
    return Action(
        "fault_reset",
        Predicate(lambda s: s["x"] > 0, name="x>0"),
        assign(x=0),
    )


class TestExplorationCaches:
    def test_edges_from_returns_stored_tuple_without_faults(self):
        ts = TransitionSystem(_counter_program(), [State(x=0)])
        state = State(x=0)
        first = ts.edges_from(state)
        assert first is ts.edges_from(state)  # no per-call copy
        assert first is ts.program_edges_from(state)

    def test_edges_from_merges_fault_edges(self):
        ts = TransitionSystem(
            _counter_program(), [State(x=0)], fault_actions=[_fault_action()]
        )
        edges = ts.edges_from(State(x=1))
        assert ("inc", State(x=2)) in edges
        assert ("fault_reset", State(x=0)) in edges
        assert ts.edges_from(State(x=1), include_faults=False) \
            == ts.program_edges_from(State(x=1))

    def test_deadlock_states_from_recorded_edges(self):
        ts = TransitionSystem(_counter_program(2), [State(x=0)])
        assert ts.deadlock_states() == [State(x=2)]

    def test_states_satisfying_memoized_per_predicate_object(self):
        ts = TransitionSystem(_counter_program(), [State(x=0)])
        even = Predicate(lambda s: s["x"] % 2 == 0, name="even")
        first = ts.states_satisfying(even)
        assert first == [State(x=0), State(x=2)]
        assert ts.states_satisfying(even) == first
        assert ts.states_satisfying(even) is not first  # fresh list, shared memo

    def test_explored_system_returns_shared_instance(self):
        clear_system_cache()
        program = _counter_program()
        starts = (State(x=0),)
        first = explored_system(program, starts)
        assert explored_system(program, starts) is first
        assert explored_system(program, (State(x=1),)) is not first

    def test_explored_system_distinguishes_fault_classes(self):
        clear_system_cache()
        program = _counter_program()
        fault = _fault_action()
        bare = explored_system(program, (State(x=0),))
        faulty = explored_system(program, (State(x=0),), fault_actions=(fault,))
        assert bare is not faulty
        assert explored_system(
            program, (State(x=0),), fault_actions=(fault,)
        ) is faulty

    def test_clear_system_cache_drops_instances(self):
        clear_system_cache()
        program = _counter_program()
        first = explored_system(program, (State(x=0),))
        clear_system_cache()
        assert explored_system(program, (State(x=0),)) is not first

    def test_program_states_satisfying_memoized(self):
        program = _counter_program()
        zero = var_eq("x", 0)
        assert program.states_satisfying(zero) == [State(x=0)]
        assert program.states_satisfying(zero) == [State(x=0)]

    def test_action_successors_memoized_and_correct(self):
        action = _counter_program().actions[0]
        state = State(x=1)
        first = action.successors(state)
        assert first == (State(x=2),)
        assert action.successors(state) is first
        assert action.successors(State(x=3)) == ()


# ---------------------------------------------------------------------------
# 3. parallel campaigns
# ---------------------------------------------------------------------------

def _strip_wall(text: str):
    rows = []
    for line in text.splitlines():
        row = json.loads(line)
        rows.append({k: v for k, v in row.items() if not k.startswith("wall")})
    return rows


def _run_campaign(scenario, workers: int, trials: int, seed: int):
    from repro.campaigns import Campaign

    stream = io.StringIO()
    campaign = Campaign(
        scenario, trials=trials, seed=seed, stream=stream, workers=workers
    )
    result = campaign.run()
    return result, stream.getvalue()


@pytest.mark.parametrize(
    "name", ["token_ring", "tmr", "byzantine", "memory_access"]
)
def test_parallel_campaign_matches_serial(name):
    """workers=4 must reproduce workers=1 exactly: same verdict, same
    per-trial outcomes, and an identical event stream modulo wall-clock
    fields — the scheduler must not leak into the results."""
    from repro.campaigns import SCENARIOS

    scenario = SCENARIOS[name]
    serial, serial_log = _run_campaign(scenario, workers=1, trials=4, seed=11)
    parallel, parallel_log = _run_campaign(scenario, workers=4, trials=4, seed=11)

    assert parallel.verdict == serial.verdict
    assert parallel.outcomes() == serial.outcomes()
    assert parallel.summary == serial.summary
    assert _strip_wall(parallel_log) == _strip_wall(serial_log)


def test_workers_one_and_zero_trials_degenerate():
    from repro.campaigns import Campaign, SCENARIOS

    campaign = Campaign(SCENARIOS["tmr"], trials=0, seed=3, workers=8)
    result = campaign.run()
    assert result.trials == []


def test_cli_accepts_workers_flag(tmp_path):
    from repro.cli import main

    jsonl = tmp_path / "log.jsonl"
    code = main(
        [
            "campaign", "tmr", "--trials", "2", "--seed", "5",
            "--workers", "2", "--jsonl", str(jsonl),
        ]
    )
    assert code == 0
    assert jsonl.exists() and jsonl.read_text().strip()
