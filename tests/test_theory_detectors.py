"""Theorems 3.4 and 3.6, validated mechanically (Section 3.2)."""

import pytest

from repro import theory
from repro.core import is_detector
from repro.core.refinement import system_from


class TestEmbeddingAction:
    def test_finds_guard_strengthened_embedding(self, memory):
        embedded = theory.embedding_action(
            memory.pf, memory.p, memory.p.action("p1")
        )
        assert embedded.name == "pf2"

    def test_no_embedding_raises(self, memory, tmr_model):
        with pytest.raises(LookupError, match="embeds"):
            theory.embedding_action(
                tmr_model.cr, tmr_model.ir, tmr_model.ir.action("IR1")
            )


class TestDetectorWitness:
    def test_witness_predicates_verify(self, memory):
        built = theory.detector_witness(
            memory.pf, memory.p, memory.p.action("p1"),
            memory.S_pf, memory.spec.safety_part(),
        )
        assert built.base_action == "p1"
        assert built.embedded_action == "pf2"
        assert is_detector(
            memory.pf, built.witness, built.detection, memory.S_pf
        )

    def test_constructed_x_is_a_detection_predicate(self, memory):
        """Executing the base action from any state satisfying the
        constructed X maintains the safety specification."""
        from repro.core.invariants import is_detection_predicate
        from repro.core.predicate import Predicate

        built = theory.detector_witness(
            memory.pf, memory.p, memory.p.action("p1"),
            memory.S_pf, memory.spec.safety_part(),
        )
        ts = system_from(memory.pf, memory.S_pf)
        base_vars = set(memory.p.variable_names)
        projected = {
            s.project(base_vars) for s in ts.states if built.detection(s)
        }
        assert projected, "the witness construction must be non-vacuous"
        assert is_detection_predicate(
            Predicate.from_states(projected, name="X|p"),
            memory.p.action("p1"),
            memory.spec.safety_part(),
            projected,
        )


class TestTheorem34:
    def test_on_memory_failsafe(self, memory):
        assert theory.theorem_3_4(
            memory.pf, memory.p, memory.S_pf, memory.spec.safety_part()
        )

    def test_on_memory_masking(self, memory):
        assert theory.theorem_3_4(
            memory.pm, memory.pn, memory.S_pm, memory.spec.safety_part()
        )

    def test_on_tmr(self, tmr_model):
        assert theory.theorem_3_4(
            tmr_model.dr_ir, tmr_model.ir, tmr_model.invariant,
            tmr_model.spec.safety_part(),
        )

    def test_premise_failure_reported(self, memory):
        """pn does not encapsulate pf (different variables) — the
        theorem function must fail on its premises, not crash."""
        result = theory.theorem_3_4(
            memory.pn, memory.pf, memory.S_pn, memory.spec.safety_part()
        )
        assert not result
        assert "premises" in result.description


class TestTheorem36:
    def test_on_memory(self, memory):
        assert theory.theorem_3_6(
            memory.pf, memory.p, memory.spec,
            invariant_base=memory.S_p, invariant_refined=memory.S_pf,
            span=memory.T_pf, faults=memory.fault_before_witness,
        )

    def test_on_tmr(self, tmr_model):
        assert theory.theorem_3_6(
            tmr_model.dr_ir, tmr_model.ir, tmr_model.spec,
            invariant_base=tmr_model.invariant,
            invariant_refined=tmr_model.invariant,
            span=tmr_model.span, faults=tmr_model.faults,
        )

    def test_premise_failure_on_unsafe_program(self, memory):
        """The intolerant p under anytime faults does not refine the
        safety spec from TRUE — premises must fail."""
        from repro.core.predicate import TRUE

        result = theory.theorem_3_6(
            memory.pn, memory.p, memory.spec,
            invariant_base=memory.S_p, invariant_refined=memory.S_pn,
            span=TRUE, faults=memory.fault_anytime,
        )
        assert not result
