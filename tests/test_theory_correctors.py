"""Theorem 4.1, Lemma 4.2 and Theorem 4.3, validated mechanically."""

from repro import theory
from repro.core import TRUE, is_corrector


class TestCorrectorWitness:
    def test_witness_verifies_on_pn(self, memory):
        built = theory.corrector_witness(memory.pn, memory.S_pn, memory.T_pn)
        assert is_corrector(
            memory.pn, built.witness, built.correction, memory.T_pn
        )

    def test_witness_verifies_on_token_ring(self, ring):
        built = theory.corrector_witness(ring.ring, ring.invariant, TRUE)
        assert is_corrector(ring.ring, built.witness, built.correction, TRUE)


class TestTheorem41:
    def test_on_memory_nonmasking(self, memory):
        assert theory.theorem_4_1(
            memory.pn, memory.p, memory.spec, memory.S_pn, memory.T_pn
        )

    def test_premise_failure_reported(self, memory):
        """pf does not converge to X1 from TRUE (it deadlocks at
        memory-absent states), so the eventually-behaves premise of
        Theorem 4.1 must fail."""
        result = theory.theorem_4_1(
            memory.pf, memory.p, memory.spec, memory.S_pn, TRUE
        )
        assert not result


class TestLemma42:
    def test_on_memory(self, memory):
        assert theory.lemma_4_2(
            memory.pn, memory.p, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pn, span=memory.T_pn,
        )

    def test_on_masking_memory(self, memory):
        assert theory.lemma_4_2(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm, span=memory.T_pm,
        )


class TestTheorem43:
    def test_on_memory(self, memory):
        assert theory.theorem_4_3(
            memory.pn, memory.p, memory.spec,
            invariant=memory.S_p, restored=memory.S_pn,
            span=memory.T_pn, faults=memory.fault_anytime,
        )

    def test_on_token_ring(self, ring):
        """Self-stabilization as Theorem 4.3: the ring refines its own
        spec, behaves as itself from the invariant, and converges from
        true — hence is a nonmasking tolerant corrector."""
        assert theory.theorem_4_3(
            ring.ring, ring.ring, ring.spec,
            invariant=ring.invariant, restored=ring.invariant,
            span=TRUE, faults=ring.faults,
        )

    def test_premise_failure_on_failsafe_program(self, memory):
        """pf never converges back after a fault — Theorem 4.3's
        premises must fail for it."""
        result = theory.theorem_4_3(
            memory.pf, memory.p, memory.spec,
            invariant=memory.S_p, restored=memory.S_pf,
            span=memory.T_pf, faults=memory.fault_before_witness,
        )
        assert not result
