"""Property-based cross-validation of the tolerance checkers.

Random small programs, random faults, random specs: the certificate-
based tolerance checkers must never contradict the bounded semantic
ground truth.

Because the certificate checkers are *certificate*-based (they certify
nonmasking via convergence to the supplied invariant), the agreement is
one-directional where the paper's definitions are: a passing
certificate implies semantic tolerance; a semantic pass does not force
the certificate (the invariant may simply be the wrong witness).  The
properties below encode exactly that.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Action,
    FaultClass,
    Predicate,
    Program,
    State,
    TRUE,
    Variable,
    assign,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    semantic_tolerance_check,
)
from repro.core.invariants import reachable_invariant
from repro.core.specification import LeadsTo, Spec, StateInvariant

DOMAIN = [0, 1, 2]


@st.composite
def programs_and_faults(draw):
    actions = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        source = draw(st.sampled_from(DOMAIN))
        target = draw(st.sampled_from(DOMAIN))
        actions.append(
            Action(
                f"a{index}",
                Predicate(lambda s, a=source: s["x"] == a, f"x={source}"),
                assign(x=target),
            )
        )
    program = Program([Variable("x", DOMAIN)], actions, name="rand")

    fault_source = draw(st.sampled_from(DOMAIN))
    fault_target = draw(st.sampled_from(DOMAIN))
    faults = FaultClass(
        [
            Action(
                "f0",
                Predicate(lambda s, a=fault_source: s["x"] == a,
                          f"x={fault_source}"),
                assign(x=fault_target),
            )
        ],
        name="rand_fault",
    )
    return program, faults


@st.composite
def safety_specs(draw):
    forbidden = draw(st.sampled_from(DOMAIN))
    return Spec(
        [StateInvariant(
            Predicate(lambda s, f=forbidden: s["x"] != f, f"x≠{forbidden}")
        )],
        name=f"avoid{forbidden}",
    )


@settings(max_examples=150, deadline=None)
@given(pf=programs_and_faults(), spec=safety_specs(),
       start=st.sampled_from(DOMAIN))
def test_failsafe_certificate_implies_semantic(pf, spec, start):
    program, faults = pf
    invariant = reachable_invariant(program, [State(x=start)])
    # span: everything reachable including fault edges
    from repro.core.exploration import TransitionSystem

    ts = TransitionSystem(program, [State(x=start)],
                          fault_actions=list(faults.actions))
    span = Predicate.from_states(ts.states, name="span")

    certificate = is_failsafe_tolerant(program, faults, spec, invariant, span)
    if certificate:
        assert semantic_tolerance_check(
            "failsafe", program, faults, spec, span,
            max_length=8, max_faults=2,
        )


@settings(max_examples=100, deadline=None)
@given(pf=programs_and_faults(), start=st.sampled_from(DOMAIN),
       goal=st.sampled_from(DOMAIN))
def test_nonmasking_certificate_implies_semantic(pf, start, goal):
    program, faults = pf
    spec = Spec(
        [LeadsTo(TRUE, Predicate(lambda s, g=goal: s["x"] == g, f"x={goal}"))],
        name=f"reach{goal}",
    )
    invariant = reachable_invariant(program, [State(x=start)])
    from repro.core.exploration import TransitionSystem

    ts = TransitionSystem(program, [State(x=start)],
                          fault_actions=list(faults.actions))
    span = Predicate.from_states(ts.states, name="span")

    certificate = is_nonmasking_tolerant(
        program, faults, spec, invariant, span
    )
    if certificate:
        assert semantic_tolerance_check(
            "nonmasking", program, faults, spec, span,
            max_length=8, max_faults=1,
        )


@settings(max_examples=100, deadline=None)
@given(pf=programs_and_faults(), spec=safety_specs(),
       start=st.sampled_from(DOMAIN))
def test_masking_certificate_implies_both_weaker_semantics(pf, spec, start):
    program, faults = pf
    invariant = reachable_invariant(program, [State(x=start)])
    from repro.core.exploration import TransitionSystem

    ts = TransitionSystem(program, [State(x=start)],
                          fault_actions=list(faults.actions))
    span = Predicate.from_states(ts.states, name="span")

    certificate = is_masking_tolerant(program, faults, spec, invariant, span)
    if certificate:
        assert semantic_tolerance_check(
            "masking", program, faults, spec, span,
            max_length=8, max_faults=1,
        )
        assert is_failsafe_tolerant(program, faults, spec, invariant, span)
