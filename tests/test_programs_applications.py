"""The remaining application catalogue: mutual exclusion, leader
election, termination detection, distributed reset."""

import pytest

from repro.core import (
    Predicate,
    State,
    TRUE,
    is_detector,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    refines_spec,
    violates_spec,
)
from repro.programs import (
    distributed_reset,
    leader_election,
    mutual_exclusion,
    termination_detection,
)


class TestMutualExclusion:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            mutual_exclusion.build(1)

    def test_tolerant_is_masking(self, mutex):
        assert is_masking_tolerant(
            mutex.tolerant, mutex.faults, mutex.spec,
            mutex.invariant, mutex.span,
        )

    def test_intolerant_is_failsafe_only(self, mutex):
        assert is_failsafe_tolerant(
            mutex.intolerant, mutex.faults, mutex.spec,
            mutex.invariant, mutex.span,
        )
        assert not is_masking_tolerant(
            mutex.intolerant, mutex.faults, mutex.spec,
            mutex.invariant, mutex.span,
        )

    def test_regeneration_never_duplicates(self, mutex):
        for state in mutex.tolerant.states():
            if mutex.corrector.enabled(state):
                assert mutex.no_token(state)

    def test_exclusion_invariant_over_span(self, mutex):
        ts = mutex.faults.system(mutex.tolerant, mutex.span)
        for state in ts.states:
            assert sum(
                1 for i in range(mutex.size) if state[f"cs{i}"]
            ) <= 1

    def test_loss_only_in_transit(self, mutex):
        """The fault cannot steal a token being used in the critical
        section (cf. the module docstring's modelling note)."""
        in_cs = State(
            tok0=True, cs0=True, done0=False,
            tok1=False, cs1=False, done1=False,
            tok2=False, cs2=False, done2=False,
        )
        for action in mutex.faults.actions:
            assert not action.successors(in_cs)


class TestLeaderElection:
    def test_distinct_ids_required(self):
        with pytest.raises(ValueError):
            leader_election.build((1, 1, 2))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            leader_election.build((1,))

    def test_nonmasking(self, election):
        assert is_nonmasking_tolerant(
            election.program, election.faults, election.spec,
            election.invariant, TRUE,
        )

    def test_converges_to_the_maximum(self, election):
        from repro.sim import RoundRobinScheduler, convergence_steps

        start = State(ldr0=1, ldr1=1, ldr2=1)
        steps = convergence_steps(
            election.program, start, election.invariant, RoundRobinScheduler()
        )
        assert steps is not None

    def test_monotone_actions(self, election):
        """Candidates never decrease — max-propagation is monotone."""
        for state in election.program.states():
            for _, nxt in election.program.successors(state):
                for i in range(len(election.ids)):
                    assert nxt[f"ldr{i}"] >= state[f"ldr{i}"]


class TestTerminationDetection:
    def test_sound_scanner_is_detector(self, termination):
        assert is_detector(
            termination.detector, termination.done,
            termination.terminated, termination.from_,
        )

    def test_unsound_scanner_refuted_with_counterexample(self, termination):
        result = is_detector(
            termination.unsound, termination.done,
            termination.terminated, termination.from_,
        )
        assert not result
        assert result.counterexample is not None, (
            "the classic scan-behind-reactivation bug must be exhibited"
        )

    def test_not_tolerant_to_spurious_activation(self, termination):
        assert not is_failsafe_tolerant(
            termination.detector, termination.faults, termination.spec,
            termination.from_, TRUE,
        )

    def test_termination_is_stable(self, termination):
        """Only active processes activate others, so 'all idle' is
        closed — the Chandy–Misra special case of the detects relation."""
        from repro.core.refinement import system_from

        ts = system_from(termination.detector, TRUE)
        closed = ts.is_closed(termination.terminated)
        assert closed

    def test_done_latches(self, termination):
        for state in termination.detector.states():
            if not state["done"]:
                continue
            for _, nxt in termination.detector.successors(state):
                assert nxt["done"]


class TestDistributedReset:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            distributed_reset.build(1)
        with pytest.raises(ValueError):
            distributed_reset.build(3, sessions=1)

    def test_nonmasking(self, reset):
        assert is_nonmasking_tolerant(
            reset.program, reset.faults, reset.spec,
            reset.invariant, reset.span,
        )

    def test_refines_spec_from_invariant(self, reset):
        assert refines_spec(reset.program, reset.spec, reset.invariant)

    def test_corruption_triggers_wave(self, reset):
        """From a corrupt state inside the span, the program reaches
        the clean invariant."""
        from repro.core.refinement import system_from
        from repro.core.fairness import check_leads_to

        ts = reset.faults.system(reset.program, reset.span)
        assert check_leads_to(ts, TRUE, reset.invariant)

    def test_wave_waits_for_completion(self, reset):
        """reset_root is disabled while a wave is still propagating."""
        mid_wave = State(
            x0=0, req0=True, sn0=1,
            x1=1, req1=True, sn1=0,
            x2=0, req2=False, sn2=0,
        )
        assert not reset.program.action("reset_root").enabled(mid_wave)
