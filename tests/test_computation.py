"""Unit tests for explicit computation enumeration and random walks."""

import random

from repro.core.action import Action, assign, choose
from repro.core.computation import (
    Computation,
    enumerate_computations,
    random_computation,
)
from repro.core.faults import set_variable
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.state import State, Variable


def chain(limit=2):
    return Program(
        [Variable("x", list(range(limit + 1)))],
        [
            Action(
                "inc",
                Predicate(lambda s, lim=limit: s["x"] < lim, f"x<{limit}"),
                assign(x=lambda s: s["x"] + 1),
            )
        ],
        name="chain",
    )


class TestEnumerate:
    def test_single_maximal_computation(self):
        computations = list(enumerate_computations(chain(2), State(x=0)))
        assert len(computations) == 1
        (c,) = computations
        assert c.complete
        assert [s["x"] for s in c.states] == [0, 1, 2]
        assert c.actions == ("inc", "inc")

    def test_branching_enumerated(self):
        split = Program(
            [Variable("x", [0, 1, 2])],
            [Action("split", Predicate(lambda s: s["x"] == 0),
                    choose(assign(x=1), assign(x=2)))],
            name="split",
        )
        computations = list(enumerate_computations(split, State(x=0)))
        finals = sorted(c.states[-1]["x"] for c in computations)
        assert finals == [1, 2]
        assert all(c.complete for c in computations)

    def test_truncation_flagged(self):
        computations = list(
            enumerate_computations(chain(10), State(x=0), max_length=3)
        )
        assert len(computations) == 1
        assert not computations[0].complete
        assert len(computations[0]) == 3

    def test_deadlocked_start_is_complete_singleton(self):
        computations = list(enumerate_computations(chain(2), State(x=2)))
        assert computations == [
            Computation((State(x=2),), (), True, 0)
        ]

    def test_fault_budget_respected(self):
        fault = set_variable("x", 0)
        computations = list(
            enumerate_computations(
                chain(1), State(x=0), max_length=6,
                fault_actions=list(fault.actions), max_faults=1,
            )
        )
        assert all(c.fault_steps <= 1 for c in computations)
        # fault labels carry the "!" marker
        fault_labelled = [
            c for c in computations if any(a.endswith("!") for a in c.actions)
        ]
        assert fault_labelled

    def test_fault_is_optional_at_deadlock(self):
        """A p-maximal computation may end even when a fault could fire."""
        fault = set_variable("x", 0)
        computations = list(
            enumerate_computations(
                chain(1), State(x=1), max_length=4,
                fault_actions=list(fault.actions), max_faults=1,
            )
        )
        assert any(len(c) == 1 and c.complete for c in computations)


class TestComputationObject:
    def test_projection(self):
        c = Computation(
            (State(x=0, y=9), State(x=1, y=9)), ("inc",), True, 0
        )
        projected = c.project(["x"])
        assert projected.states == (State(x=0), State(x=1))

    def test_suffix(self):
        c = Computation(
            (State(x=0), State(x=1), State(x=2)), ("a", "b"), True, 0
        )
        suffix = c.suffix(1)
        assert suffix.states == (State(x=1), State(x=2))
        assert suffix.actions == ("b",)

    def test_repr(self):
        c = Computation((State(x=0),), (), True, 0)
        assert "maximal" in repr(c)


class TestRandomComputation:
    def test_reaches_deadlock(self):
        c = random_computation(chain(3), State(x=0), steps=50)
        assert c.complete
        assert c.states[-1] == State(x=3)

    def test_reproducible_with_seed(self):
        rng1, rng2 = random.Random(7), random.Random(7)
        c1 = random_computation(chain(3), State(x=0), steps=10, rng=rng1)
        c2 = random_computation(chain(3), State(x=0), steps=10, rng=rng2)
        assert c1 == c2

    def test_fault_injection(self):
        fault = set_variable("x", 0)
        c = random_computation(
            chain(1), State(x=0), steps=30,
            fault_actions=list(fault.actions),
            fault_probability=1.0, max_faults=3,
            rng=random.Random(0),
        )
        assert c.fault_steps == 3
