"""Tests for the symbolic Plan-IR analyzer and its linter integration.

Covers the PR-10 tentpole end to end: the finite-domain guard solver,
exact IR frames on spaces far beyond any probe limit, translation
validation (including seeded mutant plans), the DC50x/DC51x codes, the
catalogue coverage contract, lint certificates in the content-addressed
store, cache draining, and the SARIF reporter/CLI surface.
"""

import io
import json

import pytest

from repro.analysis import (
    CatalogueCoverageError,
    LintConfig,
    LintTarget,
    all_lint_targets,
    build_probe,
    infer_frame,
    lint,
    render_sarif,
    uncovered_modules,
)
from repro.analysis import catalogue as catalogue_module
from repro.analysis import symbolic
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Proof,
    Severity,
    Suppression,
)
from repro.analysis.symbolic import GuardSolver, analyze_action
from repro.core import (
    Action,
    Plan,
    Predicate,
    Program,
    Variable,
    assign,
)
from repro.core.exploration import clear_all_caches
from repro.core.state import Schema
from repro.store import backend as store_backend
from repro import cli, programs


@pytest.fixture(autouse=True)
def _clean_store():
    store_backend.set_active_store(None)
    store_backend.reset_stats()
    yield
    store_backend.set_active_store(None)
    store_backend.reset_stats()


def _schema_of(variables):
    return Schema.of(tuple(v.name for v in variables))


def _analyze(action, variables, **kwargs):
    return analyze_action(
        action, variables, _schema_of(variables), target="t", **kwargs
    )


def _codes(analysis):
    return [d.code for d in analysis.diagnostics]


# ---------------------------------------------------------------------------
# the guard solver
# ---------------------------------------------------------------------------

class TestGuardSolver:
    domains = {"v0": (0, 1, 2), "v1": (0, 1, 2)}

    def solver(self, **kwargs):
        return GuardSolver(dict(self.domains), **kwargs)

    def test_satisfiable_and_witness(self):
        solver = self.solver()
        expr = ("and", ("eq_const", "v0", 1), ("ne_const", "v1", 0))
        assert solver.satisfiable(expr) is True
        witness = solver.witness(expr)
        assert witness["v0"] == 1 and witness["v1"] != 0

    def test_out_of_domain_constant_is_unsat(self):
        assert self.solver().satisfiable(("eq_const", "v0", 99)) is False

    def test_tautology(self):
        solver = self.solver()
        expr = ("or", ("eq_const", "v0", 0), ("ne_const", "v0", 0))
        assert solver.tautological(expr) is True
        assert solver.tautological(("eq_const", "v0", 0)) is False

    def test_disjoint_guards(self):
        solver = self.solver()
        assert solver.co_satisfiable(
            ("eq_const", "v0", 0), ("eq_const", "v0", 1)
        ) is False
        assert solver.co_satisfiable(
            ("eq_const", "v0", 0), ("eq_const", "v1", 1)
        ) is True

    def test_majority(self):
        domains = {"m": (0, 1), "b0": (0, 1), "b1": (0, 1), "b2": (0, 1)}
        solver = GuardSolver(domains)
        expr = ("eq_majority", "m", ("b0", "b1", "b2"), 3)
        assert solver.satisfiable(expr) is True
        # m must equal the majority bit of a unanimous vote
        both = ("and",
                ("eq_majority", "m", ("b0", "b1", "b2"), 3),
                ("and", ("eq_const", "b0", 1), ("eq_const", "b1", 1),
                 ("eq_const", "b2", 1), ("eq_const", "m", 0)))
        assert solver.satisfiable(both) is False

    def test_abstraction_fallback_over_budget(self):
        solver = self.solver(budget=2)  # no truth table fits
        assert solver.table(("eq_var", "v0", "v1")) is None
        # value-set abstraction still proves domain-level facts ...
        assert solver.satisfiable(("eq_const", "v0", 99)) is False
        assert solver.tautological(("ne_const", "v0", 99)) is True
        # ... and declines the ones it cannot decide
        assert solver.satisfiable(("eq_var", "v0", "v1")) is None

    def test_abstraction_disjoint_domains(self):
        solver = GuardSolver({"a": (0, 1), "b": (5, 6)}, budget=1)
        assert solver.satisfiable(("eq_var", "a", "b")) is False
        assert solver.tautological(("ne_var", "a", "b")) is True


# ---------------------------------------------------------------------------
# synthetic per-action verdicts: DC30x / DC50x / DC51x
# ---------------------------------------------------------------------------

def _two_vars():
    return [Variable("v0", [0, 1, 2]), Variable("v1", [0, 1, 2])]


class TestSymbolicVerdicts:
    def test_dc501_dead_subexpression(self):
        variables = _two_vars()
        action = Action(
            "a",
            Predicate(lambda s: s["v0"] == 1
                      and (s["v1"] == 99 or s["v1"] == 2), name="g"),
            assign(v0=0),
            reads={"v0", "v1"}, writes={"v0"},
            plan=Plan(
                ("and", ("eq_const", "v0", 1),
                 ("or", ("eq_const", "v1", 99), ("eq_const", "v1", 2))),
                [("set_const", "v0", 0)],
            ),
        )
        analysis = _analyze(action, variables)
        assert analysis.translation == "proven"
        dead = [d for d in analysis.diagnostics if d.code == "DC501"]
        assert len(dead) == 1
        assert dead[0].severity is Severity.WARNING
        assert "99" in dead[0].message

    def test_dc502_tautological_subexpression(self):
        variables = _two_vars()
        action = Action(
            "a",
            Predicate(lambda s: s["v0"] == 1
                      and (s["v1"] == 0 or s["v1"] != 0), name="g"),
            assign(v0=0),
            reads={"v0", "v1"}, writes={"v0"},
            plan=Plan(
                ("and", ("eq_const", "v0", 1),
                 ("or", ("eq_const", "v1", 0), ("ne_const", "v1", 0))),
                [("set_const", "v0", 0)],
            ),
        )
        codes = _codes(_analyze(action, variables))
        assert "DC502" in codes and "DC501" not in codes

    def test_dc502_tautological_root(self):
        variables = _two_vars()
        action = Action(
            "a",
            Predicate(lambda s: s["v0"] == 0 or s["v0"] != 0, name="g"),
            assign(v0=0),
            reads={"v0"}, writes={"v0"},
            plan=Plan(
                ("or", ("eq_const", "v0", 0), ("ne_const", "v0", 0)),
                [("set_const", "v0", 0)],
            ),
        )
        analysis = _analyze(action, variables)
        roots = [d for d in analysis.diagnostics if d.code == "DC502"]
        assert len(roots) == 1 and "guard" in roots[0].message

    def test_dc301_proven_dead_without_dc501(self):
        variables = _two_vars()
        action = Action(
            "dead",
            Predicate(lambda s: s["v0"] == 0 and s["v0"] == 1, name="g"),
            assign(v1=0),
            reads={"v0", "v1"}, writes={"v1"},
            plan=Plan(
                ("and", ("eq_const", "v0", 0), ("eq_const", "v0", 1)),
                [("set_const", "v1", 0)],
            ),
        )
        analysis = _analyze(action, variables)
        dead = [d for d in analysis.diagnostics if d.code == "DC301"]
        assert len(dead) == 1
        assert dead[0].severity is Severity.ERROR
        assert not dead[0].sampled  # proven, even though it's a lint
        # an unsatisfiable root does not also flag its conjuncts dead
        assert "DC501" not in _codes(analysis)
        assert analysis.satisfiable is False

    def test_dc303_proven_stutter(self):
        variables = _two_vars()
        action = Action(
            "stutter",
            Predicate(lambda s: s["v0"] == 1, name="g"),
            assign(v0=lambda s: s["v0"]),
            reads={"v0"}, writes={"v0"},
            plan=Plan(("eq_const", "v0", 1), [("copy", "v0", "v0")]),
        )
        analysis = _analyze(action, variables)
        assert analysis.changes_state is False
        assert "DC303" in _codes(analysis)

    def test_dc512_uncompilable_plan(self):
        variables = _two_vars()
        action = Action(
            "a",
            Predicate(lambda s: s["v0"] == 0, name="g"),
            assign(v0=1),
            reads={"v0"}, writes={"v0"},
            plan=Plan(("eq_const", "nope", 0), [("set_const", "v0", 1)]),
        )
        analysis = _analyze(action, variables)
        assert analysis.translation == "uncompilable"
        assert _codes(analysis) == ["DC512"]
        assert not analysis.covers_frames


class TestTranslationValidation:
    def _move0(self, model):
        return next(a for a in model.ring.actions if a.name == "move0")

    def test_mutant_guard_is_refuted(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        genuine = self._move0(model)
        mutant = Action(
            genuine.name, genuine.guard, genuine.statement,
            reads=genuine.reads, writes=genuine.writes,
            # seeded mutation: eq_var drifted to ne_var
            plan=Plan(("ne_var", "x0", "x2"),
                      list(genuine.plan.effects)),
        )
        analysis = _analyze(mutant, model.ring.variables)
        assert analysis.translation == "refuted"
        assert "DC511" in _codes(analysis)
        refutation = analysis.diagnostics[0]
        assert refutation.severity is Severity.ERROR
        assert refutation.evidence

    def test_mutant_effect_is_refuted(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        genuine = self._move0(model)
        mutant = Action(
            genuine.name, genuine.guard, genuine.statement,
            reads=genuine.reads, writes=genuine.writes,
            # seeded mutation: the increment decayed into a plain copy
            plan=Plan(genuine.plan.guard, [("copy", "x0", "x2")]),
        )
        analysis = _analyze(mutant, model.ring.variables)
        assert analysis.translation == "refuted"
        assert "DC511" in _codes(analysis)

    def test_mutant_plan_fails_lint(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        actions = [
            a if a.name != "move1" else Action(
                a.name, a.guard, a.statement,
                reads=a.reads, writes=a.writes,
                plan=Plan(("eq_var", "x1", "x0"), list(a.plan.effects)),
            )
            for a in model.ring.actions
        ]
        program = Program(model.ring.variables, actions, name="mutant-ring")
        report = lint(LintTarget(name="mutant", program=program))
        assert [d.code for d in report.errors()] == ["DC511"]

    def test_decomposed_validation_on_huge_space(self):
        variables = [Variable(f"v{i}", [0, 1, 2, 3]) for i in range(30)]
        action = Action(
            "wide",
            Predicate(lambda s: s["v0"] == s["v1"], name="g"),
            assign(v2=1),
            reads={"v0", "v1"}, writes={"v2"},
            plan=Plan(("eq_var", "v0", "v1"), [("set_const", "v2", 1)]),
        )
        analysis = _analyze(action, variables)
        assert analysis.translation == "decomposed"
        assert analysis.covers_frames

    def test_decomposed_catches_interpretation_drift(self):
        # the interpreted statement consults a variable the plan ignores;
        # the per-variable sweep of the decomposition must notice
        variables = [Variable(f"v{i}", [0, 1, 2, 3]) for i in range(30)]
        action = Action(
            "drifted",
            Predicate(lambda s: s["v0"] == 0, name="g"),
            assign(v1=lambda s: 1 if s["v29"] == 3 else 2),
            reads={"v0", "v29"}, writes={"v1"},
            plan=Plan(("eq_const", "v0", 0), [("set_const", "v1", 2)]),
        )
        analysis = _analyze(action, variables)
        assert analysis.translation == "refuted"
        assert "DC511" in _codes(analysis)


# ---------------------------------------------------------------------------
# exact frames: proven on spaces no probe can enumerate
# ---------------------------------------------------------------------------

class TestProvenFrames:
    def _wide_action(self, reads, writes):
        variables = [Variable(f"v{i}", [0, 1, 2, 3]) for i in range(30)]
        action = Action(
            "wide",
            Predicate(lambda s: s["v0"] == s["v1"], name="g"),
            assign(v2=1),
            reads=reads, writes=writes,
            plan=Plan(("eq_var", "v0", "v1"), [("set_const", "v2", 1)]),
        )
        return action, variables

    def test_exact_frame_on_huge_space(self):
        action, variables = self._wide_action({"v0", "v1"}, {"v2"})
        analysis = _analyze(action, variables)
        assert analysis.reads == frozenset({"v0", "v1"})
        assert analysis.writes == frozenset({"v2"})
        assert analysis.diagnostics == ()
        assert {p.rule for p in analysis.proofs} >= {
            "frame-soundness", "guard-satisfiability",
            "translation-validation",
        }

    def test_undeclared_read_proven(self):
        action, variables = self._wide_action({"v0"}, {"v2"})
        analysis = _analyze(action, variables)
        findings = [d for d in analysis.diagnostics if d.code == "DC101"]
        assert [d.variables for d in findings] == [("v1",)]
        assert findings[0].severity is Severity.ERROR
        assert not findings[0].sampled  # 4^30 states, still a proof

    def test_undeclared_write_proven(self):
        action, variables = self._wide_action({"v0", "v1"}, frozenset())
        analysis = _analyze(action, variables)
        findings = [d for d in analysis.diagnostics if d.code == "DC102"]
        assert [d.variables for d in findings] == [("v2",)]
        assert not findings[0].sampled

    def test_masked_but_never_overwritten_proven(self):
        # v3 is declared written but no effect assigns it: the successor
        # memo would mask a carried variable
        action, variables = self._wide_action({"v0", "v1"}, {"v2", "v3"})
        analysis = _analyze(action, variables)
        findings = [d for d in analysis.diagnostics if d.code == "DC101"]
        assert [d.variables for d in findings] == [("v3",)]
        assert "ever assigns" in findings[0].message


def _planned_actions(target):
    actions = list(target.program.actions)
    if target.faults is not None:
        actions += list(target.faults.actions)
    return [
        a for a in actions
        if getattr(a, "plan", None) is not None and a._base is None
    ]


class TestFrameProperty:
    """IR-inferred frames == differential-probe frames, exhaustively,
    for every planned bundled action."""

    def test_ir_frames_match_differential_frames(self):
        checked = 0
        for target in all_lint_targets():
            planned = _planned_actions(target)
            if not planned:
                continue
            variables = target.program.variables
            probe = build_probe(variables, limit=1 << 15)
            assert probe.exhaustive, (
                f"{target.name}: bundled space ({probe.space_size}) grew "
                f"past the exhaustive-probe budget; raise the limit so "
                f"this property stays a proof"
            )
            schema = Schema.of(tuple(v.name for v in variables))
            for action in planned:
                analysis = analyze_action(
                    action, variables, schema, target=target.name
                )
                assert analysis.validated, (target.name, action.name)
                reads, writes, complete = infer_frame(
                    action, variables, probe,
                    pair_budget=10 ** 9, alt_limit=0,
                )
                assert complete, (target.name, action.name)
                assert analysis.reads == reads, (target.name, action.name)
                assert analysis.writes == writes, (target.name, action.name)
                checked += 1
        assert checked >= 40  # token ring + byzantine + bundled faults


# ---------------------------------------------------------------------------
# catalogue self-lint: proven, clean, and coverage-enforced
# ---------------------------------------------------------------------------

class TestCatalogueSelfLint:
    def test_every_planned_action_is_proven(self):
        for target in all_lint_targets():
            planned = _planned_actions(target)
            if not planned:
                continue
            report = lint(target)
            assert not report.errors(), (target.name, report.errors())
            for action in planned:
                for rule in ("translation-validation", "frame-soundness",
                             "guard-satisfiability"):
                    assert report.proofs_for(rule, action=action.name), (
                        target.name, action.name, rule
                    )
                sampled = [
                    d for d in report.diagnostics
                    if d.action == action.name and d.sampled
                    and (d.code.startswith("DC1") or d.code.startswith("DC3"))
                ]
                assert not sampled, (target.name, action.name, sampled)

    def test_uncovered_modules_flags_new_scenarios(self):
        assert uncovered_modules(["token_ring", "shiny_new"]) == ["shiny_new"]
        assert uncovered_modules(["oral_messages"]) == []  # exempt
        assert uncovered_modules() == []  # the live catalogue is covered

    def test_all_lint_targets_refuses_uncovered_module(self, monkeypatch):
        monkeypatch.setattr(
            programs, "program_modules",
            lambda: ("token_ring", "brand_new_scenario"),
        )
        with pytest.raises(CatalogueCoverageError) as err:
            all_lint_targets()
        assert "brand_new_scenario" in str(err.value)

    def test_program_modules_lists_scenarios(self):
        modules = programs.program_modules()
        assert "token_ring" in modules and "byzantine" in modules
        assert "oral_messages" in modules


# ---------------------------------------------------------------------------
# lint certificates in the content-addressed store
# ---------------------------------------------------------------------------

def _small_program(flavor=0):
    variables = [Variable("a", [0, 1, 2]), Variable("b", [0, 1, 2])]
    stable = Action(
        "stable",
        Predicate(lambda s: s["a"] != 0, name="ga"),
        assign(a=0),
        reads={"a"}, writes={"a"},
        plan=Plan(("ne_const", "a", 0), [("set_const", "a", 0)]),
    )
    value = 1 if flavor else 2
    edited = Action(
        "edited",
        Predicate(lambda s, v=value: s["b"] != v, name="gb"),
        assign(b=value),
        reads={"b"}, writes={"b"},
        plan=Plan(("ne_const", "b", value), [("set_const", "b", value)]),
    )
    return Program(variables, [stable, edited], name=f"small{flavor}")


class TestLintStore:
    def test_warm_report_replays_identically(self):
        store_backend.set_active_store(":memory:")
        target = LintTarget(name="small", program=_small_program())
        cold = lint(target)
        assert store_backend.stats().get("puts", 0) > 0
        warm = lint(target)
        assert store_backend.stats().get("lint_report_hits") == 1
        assert warm.to_dict() == cold.to_dict()

    def test_single_action_edit_replays_the_rest(self):
        store_backend.set_active_store(":memory:")
        lint(LintTarget(name="small", program=_small_program(0)))
        store_backend.reset_stats()
        symbolic.clear_symbolic_caches()  # force the store, not the memo
        lint(LintTarget(name="small", program=_small_program(1)))
        stats = store_backend.stats()
        # the edited action missed, the untouched one replayed
        assert stats.get("lint_action_hits") == 1
        assert stats.get("lint_report_hits") is None

    def test_store_failures_degrade_to_cold(self):
        class Exploding(store_backend.MemoryStore):
            def get(self, key):
                raise RuntimeError("backend down")

            def put(self, key, payload):
                raise RuntimeError("backend down")

        store_backend.set_active_store(Exploding())
        target = LintTarget(name="small", program=_small_program())
        report = lint(target)  # must not raise
        assert not report.errors()


class TestCacheDrain:
    def test_cold_run_after_drain_is_identical(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        target = LintTarget(
            name="token_ring", program=model.ring, spec=model.spec,
            invariant=model.invariant, faults=model.faults,
        )
        first = lint(target).to_dict()
        assert symbolic._ANALYSES  # the pass populated its memo
        clear_all_caches()
        assert not symbolic._ANALYSES
        assert not symbolic._TRUTH_TABLES
        second = lint(target).to_dict()
        assert first == second

    def test_memo_serves_repeat_analyses(self):
        from repro.programs import token_ring

        model = token_ring.build(3)
        variables = model.ring.variables
        schema = Schema.of(tuple(v.name for v in variables))
        action = model.ring.actions[0]
        first = analyze_action(action, variables, schema, target="t")
        second = analyze_action(action, variables, schema, target="t")
        assert first is second


# ---------------------------------------------------------------------------
# SARIF reporter + CLI surface
# ---------------------------------------------------------------------------

class TestSarif:
    def _reports(self):
        report = LintReport(target="demo")
        report.add(Diagnostic(
            code="DC101", severity=Severity.ERROR, rule="frame-soundness",
            message="boom", target="demo", action="a1",
            evidence="v0=1 (other variables arbitrary)",
        ))
        report.add(Diagnostic(
            code="DC303", severity=Severity.INFO,
            rule="guard-satisfiability",
            message="stutter", target="demo", action="a2",
        ))
        report.apply_suppressions(
            [Suppression(code="DC303", justification="intentional loop")]
        )
        report.add_proofs([Proof(
            rule="translation-validation", method="exhaustive",
            detail="plan agrees", target="demo", action="a1",
        )])
        return [report]

    def test_sarif_document_shape(self):
        out = io.StringIO()
        render_sarif(self._reports(), out)
        doc = json.loads(out.getvalue())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "DC101", "DC303",
        ]
        by_rule = {r["ruleId"]: r for r in run["results"]}
        assert by_rule["DC101"]["level"] == "error"
        fqn = by_rule["DC101"]["locations"][0]["logicalLocations"][0]
        assert fqn["fullyQualifiedName"] == "demo::a1"
        assert by_rule["DC303"]["level"] == "note"
        assert by_rule["DC303"]["suppressions"][0]["justification"] == (
            "intentional loop"
        )
        assert run["properties"]["summary"]["proven"] == 1


class TestLintCliSymbolic:
    def test_format_sarif(self):
        out = io.StringIO()
        rc = cli.main(["lint", "token_ring", "--format", "sarif"], out=out)
        assert rc == 0
        doc = json.loads(out.getvalue())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_no_symbolic_flag(self):
        out = io.StringIO()
        rc = cli.main(["lint", "token_ring", "--no-symbolic"], out=out)
        assert rc == 0
        assert "proven fact(s)" not in out.getvalue()

    def test_store_warm_run_replays(self, tmp_path):
        spec = str(tmp_path / "lint-certs.sqlite")
        cold_out = io.StringIO()
        assert cli.main(
            ["lint", "token_ring", "tmr", "--store", spec], out=cold_out
        ) == 0
        assert "misses" in cold_out.getvalue()
        store_backend.set_active_store(None)
        store_backend.reset_stats()
        warm_out = io.StringIO()
        assert cli.main(
            ["lint", "token_ring", "tmr", "--store", spec], out=warm_out
        ) == 0
        text = warm_out.getvalue()
        assert "0 misses" in text and "lint-reports" in text
        # warm text output is identical apart from the stats line
        strip = lambda s: [
            line for line in s.splitlines()
            if not line.startswith("store:")
        ]
        assert strip(warm_out.getvalue()) == strip(cold_out.getvalue())

    def test_proven_facts_in_text_summary(self):
        out = io.StringIO()
        assert cli.main(["lint", "token_ring"], out=out) == 0
        assert "proven fact(s)" in out.getvalue()
