"""Unit tests for the three tolerance checkers (Section 2.4)."""

import pytest

from repro.core.predicate import TRUE
from repro.core.tolerance import (
    check_implication,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    is_tolerant,
    semantic_tolerance_check,
)


class TestImplication:
    def test_holds(self, memory):
        assert check_implication(memory.pf, memory.S_pf, memory.T_pf)

    def test_fails_with_state_witness(self, memory):
        result = check_implication(memory.pf, memory.T_pf, memory.S_pf)
        assert not result
        assert result.counterexample.kind == "state"


class TestFigureLadder:
    """The paper's Figures 1-3, as tolerance certificates."""

    def test_fig1_pf_failsafe(self, memory):
        assert is_failsafe_tolerant(
            memory.pf, memory.fault_before_witness, memory.spec,
            memory.S_pf, memory.T_pf,
        )

    def test_fig2_pn_nonmasking(self, memory):
        assert is_nonmasking_tolerant(
            memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        )

    def test_fig3_pm_masking(self, memory):
        assert is_masking_tolerant(
            memory.pm, memory.fault_before_witness, memory.spec,
            memory.S_pm, memory.T_pm,
        )

    def test_masking_implies_the_weaker_classes(self, memory):
        """pm is also fail-safe and nonmasking tolerant (masking is the
        strictest class)."""
        assert is_failsafe_tolerant(
            memory.pm, memory.fault_before_witness, memory.spec,
            memory.S_pm, memory.T_pm,
        )
        assert is_nonmasking_tolerant(
            memory.pm, memory.fault_before_witness, memory.spec,
            memory.S_pm, memory.T_pm,
        )


class TestStrictSeparation:
    """Each program achieves its class and not the stronger ones."""

    def test_p_is_not_even_failsafe(self, memory):
        assert not is_failsafe_tolerant(
            memory.p, memory.fault_anytime, memory.spec,
            memory.S_p, TRUE,
        )

    def test_pf_is_not_nonmasking(self, memory):
        assert not is_nonmasking_tolerant(
            memory.pf, memory.fault_before_witness, memory.spec,
            memory.S_pf, memory.T_pf,
        ), "pf deadlocks after a page fault and never recovers"

    def test_pf_is_not_masking(self, memory):
        assert not is_masking_tolerant(
            memory.pf, memory.fault_before_witness, memory.spec,
            memory.S_pf, memory.T_pf,
        )

    def test_pn_is_not_failsafe(self, memory):
        assert not is_failsafe_tolerant(
            memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        ), "pn transiently writes wrong data"

    def test_pn_is_not_masking(self, memory):
        assert not is_masking_tolerant(
            memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        )


class TestDispatch:
    def test_is_tolerant_dispatch(self, memory):
        assert is_tolerant(
            "failsafe", memory.pf, memory.fault_before_witness, memory.spec,
            memory.S_pf, memory.T_pf,
        )
        assert is_tolerant(
            "nonmasking", memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        )
        assert is_tolerant(
            "masking", memory.pm, memory.fault_before_witness, memory.spec,
            memory.S_pm, memory.T_pm,
        )

    def test_unknown_kind_rejected(self, memory):
        with pytest.raises(ValueError, match="unknown tolerance kind"):
            is_tolerant(
                "bulletproof", memory.pf, memory.fault_before_witness,
                memory.spec, memory.S_pf, memory.T_pf,
            )


class TestSemanticCrossValidation:
    """The certificate-based verdicts agree with brute-force
    enumeration of bounded computations."""

    def test_pf_failsafe_semantically(self, memory):
        assert semantic_tolerance_check(
            "failsafe", memory.pf, memory.fault_before_witness, memory.spec,
            memory.T_pf, max_length=7, max_faults=1,
        )

    def test_pm_masking_semantically(self, memory):
        assert semantic_tolerance_check(
            "masking", memory.pm, memory.fault_before_witness, memory.spec,
            memory.T_pm, max_length=8, max_faults=1,
        )

    def test_pn_nonmasking_semantically(self, memory):
        assert semantic_tolerance_check(
            "nonmasking", memory.pn, memory.fault_anytime, memory.spec,
            memory.T_pn, max_length=8, max_faults=1,
        )

    def test_pn_fails_failsafe_semantically(self, memory):
        result = semantic_tolerance_check(
            "failsafe", memory.pn, memory.fault_anytime, memory.spec,
            memory.T_pn, max_length=8, max_faults=1,
        )
        assert not result
        assert result.counterexample.kind == "trace"

    def test_unknown_kind_rejected(self, memory):
        with pytest.raises(ValueError):
            semantic_tolerance_check(
                "perfect", memory.pf, memory.fault_before_witness,
                memory.spec, memory.T_pf,
            )
