"""Section 6.1 — triple modular redundancy by composition."""

import pytest

from repro import theory
from repro.core import (
    BOTTOM,
    State,
    is_detector,
    is_failsafe_tolerant,
    is_masking_tolerant,
    refines_program,
    refines_spec,
    violates_spec,
)
from repro.programs import tmr


class TestModel:
    def test_distinct_values_required(self):
        with pytest.raises(ValueError):
            tmr.build(uncor=1, corrupted=1)

    def test_composition_structure(self, tmr_model):
        """TMR = DR;IR ‖ CR — the composed program has IR's restricted
        action plus CR's two voter actions."""
        assert {a.name for a in tmr_model.tmr.actions} == {"IR1", "CR1", "CR2"}

    def test_dr_ir_is_restriction(self, tmr_model):
        """DR;IR's action is IR1 with the witness conjoined."""
        for state in tmr_model.ir.states():
            if tmr_model.dr_ir.action("IR1").enabled(state):
                assert tmr_model.ir.action("IR1").enabled(state)
                assert tmr_model.witness_dr(state)


class TestPaperClaims:
    def test_ir_refines_spec_without_faults(self, tmr_model):
        assert refines_spec(tmr_model.ir, tmr_model.spec, tmr_model.invariant)

    def test_ir_violates_safety_under_faults(self, tmr_model):
        assert violates_spec(
            tmr_model.ir, tmr_model.spec.safety_part(), tmr_model.invariant,
            fault_actions=list(tmr_model.faults.actions),
        )

    def test_stateless_detector(self, tmr_model):
        """(x=y ∨ x=z) detects (x=uncor) in the program that merely
        evaluates the predicate, from states with ≤1 corruption."""
        assert is_detector(
            tmr_model.detector_eval,
            tmr_model.witness_dr, tmr_model.detection_dr,
            tmr_model.span_inputs,
        )

    def test_dr_ir_failsafe(self, tmr_model):
        assert is_failsafe_tolerant(
            tmr_model.dr_ir, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )

    def test_dr_ir_deadlocks_when_x_corrupted(self, tmr_model):
        state = State(x=0, y=1, z=1, out=BOTTOM)
        assert tmr_model.dr_ir.is_deadlocked(state)

    def test_tmr_masking(self, tmr_model):
        assert is_masking_tolerant(
            tmr_model.tmr, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )

    def test_dr_ir_is_not_masking(self, tmr_model):
        assert not is_masking_tolerant(
            tmr_model.dr_ir, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        ), "without CR the system deadlocks when x is corrupted"

    def test_corrector_unblocks(self, tmr_model):
        state = State(x=0, y=1, z=1, out=BOTTOM)
        successors = {
            t["out"]
            for action in tmr_model.cr.actions
            for t in action.successors(state)
        }
        assert successors == {1}, "CR votes the uncorrupted value"


class TestTheoremApplications:
    def test_theorem_3_6_on_dr_ir(self, tmr_model):
        assert theory.theorem_3_6(
            tmr_model.dr_ir, tmr_model.ir, tmr_model.spec,
            invariant_base=tmr_model.invariant,
            invariant_refined=tmr_model.invariant,
            span=tmr_model.span, faults=tmr_model.faults,
        )

    def test_dr_ir_refines_ir(self, tmr_model):
        assert refines_program(tmr_model.dr_ir, tmr_model.ir, tmr_model.invariant)
        assert tmr_model.dr_ir.encapsulates(tmr_model.ir)


class TestExtantEquivalence:
    """Section 6's claim that the composed system IS the classical TMR:
    the composition and a monolithic hand-written voter are mutually
    refining from the invariant."""

    def monolithic(self, tmr_model):
        from repro.core import Action, Predicate, Program, assign

        unset = Predicate(lambda s: s["out"] is BOTTOM, "out=⊥")
        return Program(
            tmr_model.tmr.variables,
            [
                Action(
                    "vote_x",
                    unset & Predicate(lambda s: s["x"] == s["y"] or s["x"] == s["z"]),
                    assign(out=lambda s: s["x"]),
                ),
                Action(
                    "vote_y",
                    unset & Predicate(lambda s: s["y"] == s["z"] or s["y"] == s["x"]),
                    assign(out=lambda s: s["y"]),
                ),
                Action(
                    "vote_z",
                    unset & Predicate(lambda s: s["z"] == s["x"] or s["z"] == s["y"]),
                    assign(out=lambda s: s["z"]),
                ),
            ],
            name="monolithic_tmr",
        )

    def test_mutual_refinement(self, tmr_model):
        monolithic = self.monolithic(tmr_model)
        assert refines_program(tmr_model.tmr, monolithic, tmr_model.span)
        assert refines_program(monolithic, tmr_model.tmr, tmr_model.span)

    def test_same_tolerance(self, tmr_model):
        assert is_masking_tolerant(
            self.monolithic(tmr_model), tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )
