"""Tests for the static analyzer (:mod:`repro.analysis`).

Covers the diagnostic rules one by one on purpose-built tiny programs
(including the deliberately mis-framed action the acceptance criteria
call for), the Action frame edge cases the frame rule exists to guard,
the catalogue self-lint, the ``repro lint`` CLI surface, and the
aggregated interference report of the nonmasking synthesis pass.
"""

import io
import json

import pytest

from repro import synthesis
from repro.analysis import (
    InterferenceError,
    LintConfig,
    Severity,
    Suppression,
    all_lint_targets,
    infer_frame,
    lint,
    lint_program,
)
from repro.analysis.linter import LintTarget
from repro.cli import main
from repro.core import (
    Action,
    FALSE,
    FaultClass,
    LeadsTo,
    Predicate,
    Program,
    Spec,
    StateInvariant,
    TRUE,
    Variable,
    assign,
)


def codes(report):
    return {d.code for d in report.diagnostics}


def error_codes(report):
    return {d.code for d in report.errors()}


def two_var_program(actions, name="toy"):
    return Program(
        [Variable("x", [0, 1, 2]), Variable("y", [0, 1])], actions, name=name
    )


class TestFrameRule:
    def test_correct_frames_are_clean(self):
        action = Action(
            "inc",
            Predicate(lambda s: s["y"] == 1, "y=1"),
            assign(x=lambda s: (s["x"] + 1) % 3),
            reads={"x", "y"}, writes={"x"},
        )
        report = lint_program(two_var_program([action]))
        assert not report.errors()
        assert "DC101" not in codes(report) and "DC102" not in codes(report)

    def test_misframed_action_is_flagged(self):
        """The acceptance criterion: a deliberately mis-framed action
        draws DC1xx errors — reads misses the guard variable ``y``,
        writes misses the written variable ``x``."""
        action = Action(
            "bad",
            Predicate(lambda s: s["y"] == 1, "y=1"),
            assign(x=1),
            reads={"x"}, writes={"y"},
        )
        report = lint_program(two_var_program([action]))
        assert {"DC101", "DC102"} <= error_codes(report)
        read_violation = next(
            d for d in report.errors() if d.code == "DC101"
        )
        assert "y" in read_violation.variables
        assert read_violation.action == "bad"

    def test_unknown_frame_variable(self):
        action = Action("a", TRUE, assign(x=0),
                        reads={"nonexistent"}, writes={"x"})
        report = lint_program(two_var_program([action]))
        assert "DC105" in error_codes(report)

    def test_unframed_action_is_info_only(self):
        action = Action("a", TRUE, assign(x=0))
        report = lint_program(two_var_program([action]))
        assert "DC103" in codes(report)
        assert not report.errors()

    def test_partial_frame_warns_and_disables_memo(self):
        action = Action("a", TRUE, assign(x=0), reads={"x"})
        assert action._class_memo is None  # memo needs both halves
        report = lint_program(two_var_program([action]))
        assert "DC104" in codes(report)
        assert not report.errors()

    def test_suggest_frames_proposes_a_declaration(self):
        action = Action(
            "guarded",
            Predicate(lambda s: s["y"] == 1, "y=1"),
            assign(x=lambda s: (s["x"] + 1) % 3),
        )
        report = lint_program(
            two_var_program([action]), config=LintConfig(suggest_frames=True)
        )
        suggestion = next(d for d in report.diagnostics if d.code == "DC103")
        assert "reads=" in suggestion.hint and "writes=" in suggestion.hint
        assert "'y'" in suggestion.hint and "'x'" in suggestion.hint

    def test_infer_frame_matches_dependencies(self):
        action = Action(
            "guarded",
            Predicate(lambda s: s["y"] == 1, "y=1"),
            assign(x=lambda s: (s["x"] + 1) % 3),
        )
        program = two_var_program([action])
        from repro.analysis import build_probe

        probe = build_probe(program.variables)
        reads, writes, complete = infer_frame(
            action, program.variables, probe
        )
        assert complete
        assert reads == {"x", "y"} and writes == {"x"}


class TestFrameEdgeCases:
    """The Action machinery the frame rule exists to protect."""

    def test_renamed_preserves_frames_and_memo(self):
        action = Action("a", TRUE, assign(x=0), reads={"x"}, writes={"x"})
        clone = action.renamed("b")
        assert clone.reads == action.reads
        assert clone.writes == action.writes
        assert clone._class_memo is not None

    def test_masked_write_memoizes_correctly(self):
        """``writes - reads`` (masked) is sound only because the rule
        verifies the variable is overwritten regardless of its value;
        here it is, and the memoized relation matches first principles."""
        from repro.analysis import raw_successors

        action = Action(
            "clear",
            Predicate(lambda s: s["y"] == 1, "y=1"),
            assign(x=0),
            reads={"y"}, writes={"x"},  # x is masked: written, never read
        )
        program = two_var_program([action])
        report = lint_program(program)
        assert not report.errors()
        for state in program.states():
            assert action.successors(state) == raw_successors(action, state)

    def test_writes_subset_of_reads_memoizes_correctly(self):
        from repro.analysis import raw_successors

        action = Action(
            "inc", TRUE,
            assign(x=lambda s: (s["x"] + 1) % 3),
            reads={"x"}, writes={"x"},  # no masked set
        )
        program = two_var_program([action])
        assert not lint_program(program).errors()
        for state in program.states():
            assert action.successors(state) == raw_successors(action, state)

    def test_under_declared_mask_is_caught_not_silently_wrong(self):
        """Declaring x write-only while the statement *keeps* x on some
        states is exactly the silent-corruption case: the memo would
        collapse states that differ on x.  The rule must flag it."""
        action = Action(
            "keep_sometimes", TRUE,
            lambda s: s.assign(x=0) if s["y"] == 1 else s,
            reads={"y"}, writes={"x"},
        )
        report = lint_program(two_var_program([action]))
        assert error_codes(report) & {"DC101", "DC102"}


class TestGuardRule:
    def test_dead_guard_is_an_error_when_exhaustive(self):
        action = Action("dead", Predicate(lambda s: s["x"] == 99, "x=99"),
                        assign(x=0))
        report = lint_program(two_var_program([action]))
        dead = next(d for d in report.diagnostics if d.code == "DC301")
        assert dead.severity == Severity.ERROR
        assert dead.action == "dead"

    def test_disjoint_from_start_is_advisory(self):
        action = Action("recover", Predicate(lambda s: s["x"] == 2, "x=2"),
                        assign(x=0))
        report = lint_program(
            two_var_program([action]),
            start=Predicate(lambda s: s["x"] == 0, "x=0"),
        )
        advisory = next(d for d in report.diagnostics if d.code == "DC302")
        assert advisory.severity == Severity.INFO

    def test_correctors_exempt_from_start_advisory(self):
        action = Action("recover", Predicate(lambda s: s["x"] == 2, "x=2"),
                        assign(x=0))
        report = lint_program(
            two_var_program([action]),
            start=Predicate(lambda s: s["x"] == 0, "x=0"),
            correctors=("recover",),
        )
        assert "DC302" not in codes(report)

    def test_stutter_only_action_is_flagged(self):
        action = Action("noop", TRUE, lambda s: s)
        report = lint_program(two_var_program([action]))
        assert "DC303" in codes(report)
        assert not report.errors()


class TestSpecRule:
    def test_unsatisfiable_state_invariant(self):
        spec = Spec([StateInvariant(FALSE, name="never")], name="BAD")
        action = Action("a", TRUE, assign(x=0), reads=set(), writes={"x"})
        report = lint_program(two_var_program([action]), spec=spec)
        assert "DC402" in error_codes(report)

    def test_vacuous_leads_to_source(self):
        spec = Spec([LeadsTo(FALSE, TRUE, name="vacuous")], name="SPEC")
        action = Action("a", TRUE, assign(x=0), reads=set(), writes={"x"})
        report = lint_program(two_var_program([action]), spec=spec)
        vacuous = next(d for d in report.diagnostics if d.code == "DC404")
        assert vacuous.severity == Severity.INFO

    def test_invariant_not_closed_under_program(self):
        flip = Action(
            "flip", TRUE,
            assign(x=lambda s: (s["x"] + 1) % 3),
            reads={"x"}, writes={"x"},
        )
        report = lint_program(
            two_var_program([flip]),
            invariant=Predicate(lambda s: s["x"] == 0, "x=0"),
        )
        closure = next(d for d in report.diagnostics if d.code == "DC406")
        assert closure.severity == Severity.ERROR
        assert closure.evidence  # names the escaping transition

    def test_span_closure_includes_faults(self):
        corrupt = Action("corrupt", Predicate(lambda s: s["x"] == 0, "x=0"),
                         assign(x=2), reads={"x"}, writes={"x"})
        keep = Action("keep", TRUE, assign(y=1),
                      reads=set(), writes={"y"})
        report = lint_program(
            two_var_program([keep]),
            span=Predicate(lambda s: s["x"] < 2, "x<2"),
            faults=FaultClass([corrupt], name="corruption"),
        )
        assert "DC407" in error_codes(report)


class TestInterferenceRule:
    def invariant(self):
        return Predicate(lambda s: s["x"] == 0, "x=0")

    def flip(self):
        return Action("flip", TRUE, assign(x=lambda s: 1 - min(s["x"], 1)),
                      reads={"x"}, writes={"x"})

    def test_corrector_moving_invariant_state_is_an_error(self):
        report = lint_program(
            two_var_program([self.flip()]),
            invariant=self.invariant(),
            correctors=("flip",),
        )
        dc203 = next(d for d in report.errors() if d.code == "DC203")
        assert dc203.action == "flip"
        assert "interferes" in dc203.message

    def test_component_is_exempt_from_strict_condition(self):
        report = lint_program(
            two_var_program([self.flip()]),
            invariant=self.invariant(),
            components=("flip",),
        )
        assert "DC203" not in codes(report)

    def test_write_write_race_without_invariant(self):
        base = Action("base", TRUE, assign(x=0), reads=set(), writes={"x"})
        comp = Action("comp", TRUE, assign(x=1), reads=set(), writes={"x"})
        report = lint_program(
            two_var_program([base, comp]),
            components=("comp",),
        )
        race = next(d for d in report.diagnostics if d.code == "DC201")
        assert race.severity == Severity.WARNING
        assert "x" in race.variables

    def test_clean_exhaustive_semantic_check_subsumes_races(self):
        """When DC203 ran over the full invariant set and found nothing,
        the syntactic race audit is skipped: interference freedom has
        been verified directly."""
        base = Action("base", TRUE, assign(x=0), reads=set(), writes={"x"})
        guarded = Action(
            "fixup",
            Predicate(lambda s: s["x"] != 0, "x≠0"),
            assign(x=0),
            reads={"x"}, writes={"x"},
        )
        report = lint_program(
            two_var_program([base, guarded]),
            invariant=self.invariant(),
            correctors=("fixup",),
        )
        assert not codes(report) & {"DC201", "DC202", "DC203"}


class TestSuppressions:
    def test_justified_suppression_downgrades_strictness(self):
        dead = Action("dead", Predicate(lambda s: s["x"] == 99, "x=99"),
                      assign(x=0))
        program = two_var_program([dead])
        target = LintTarget(
            name="toy", program=program,
            suppressions=(
                Suppression("DC301", "kept as documentation", action="dead"),
            ),
        )
        report = lint(target)
        assert not report.errors()
        suppressed = next(d for d in report.diagnostics if d.suppressed)
        assert suppressed.code == "DC301"
        assert suppressed.justification == "kept as documentation"


class TestCatalogueSelfLint:
    def test_every_bundled_target_is_error_free(self):
        reports = [lint(target) for target in all_lint_targets()]
        assert reports, "catalogue must not be empty"
        failing = {
            r.target: [d.format() for d in r.errors()]
            for r in reports if r.errors()
        }
        assert not failing, failing

    def test_termination_detection_dirty_bit_race_is_reported(self):
        """The scanner's dirty-bit handshake races the activations by
        design; the pure detector has no invariant to prove interference
        freedom against, so the audit stays — as a warning, not an
        error."""
        from repro.analysis import lint_targets

        (report,) = [lint(t) for t in lint_targets("termination_detection")]
        race = next(d for d in report.diagnostics if d.code == "DC201")
        assert race.severity == Severity.WARNING
        assert race.action == "scan_restart"


class TestLintCli:
    def test_single_entry_text(self):
        out = io.StringIO()
        assert main(["lint", "token_ring"], out=out) == 0
        text = out.getvalue()
        assert "token_ring: ok" in text
        assert "0 error(s)" in text

    def test_strict_passes_on_clean_entry(self):
        out = io.StringIO()
        assert main(["lint", "memory_access", "--strict"], out=out) == 0

    def test_json_output_is_machine_readable(self):
        out = io.StringIO()
        assert main(["lint", "tmr", "--json"], out=out) == 0
        payload = json.loads(out.getvalue())
        targets = {r["target"] for r in payload["reports"]}
        assert {"tmr/ir", "tmr/dr_ir", "tmr/tmr"} <= targets
        assert all("summary" in r for r in payload["reports"])

    def test_unknown_entry(self):
        out = io.StringIO()
        assert main(["lint", "nonsense"], out=out) == 2
        assert "unknown catalogue entry" in out.getvalue()

    def test_no_entries(self):
        out = io.StringIO()
        assert main(["lint"], out=out) == 2

    def test_strict_fails_on_errors(self, monkeypatch):
        """--strict turns error-level findings into exit 1."""
        from repro.analysis import catalogue

        dead = Action("dead", Predicate(lambda s: s["x"] == 99, "x=99"),
                      assign(x=0))
        broken = LintTarget(name="broken", program=two_var_program([dead]))
        monkeypatch.setitem(
            catalogue.LINT_CATALOGUE, "broken", lambda: [broken]
        )
        out = io.StringIO()
        assert main(["lint", "broken", "--strict"], out=out) == 1
        assert "DC301" in out.getvalue()
        out = io.StringIO()
        assert main(["lint", "broken"], out=out) == 0  # advisory without it


class TestNonmaskingAggregation:
    def build(self):
        program = Program(
            [Variable("x", [0, 1, 2])],
            [Action("settle", Predicate(lambda s: s["x"] == 2, "x=2"),
                    assign(x=0), reads={"x"}, writes={"x"})],
            name="toy",
        )
        invariant = Predicate(lambda s: s["x"] == 0, "x=0")
        return program, invariant

    def meddler(self, name, value):
        return Action(name, TRUE, assign(x=value),
                      reads=set(), writes={"x"})

    def test_all_interfering_correctors_reported_in_one_pass(self):
        program, invariant = self.build()
        with pytest.raises(InterferenceError) as excinfo:
            synthesis.add_nonmasking(
                program, FaultClass([], name="none"), invariant, TRUE,
                correctors=[self.meddler("m1", 1), self.meddler("m2", 2)],
            )
        error = excinfo.value
        assert isinstance(error, ValueError)  # backward compatibility
        assert [d.action for d in error.diagnostics] == ["m1", "m2"]
        assert all(d.code == "DC203" for d in error.diagnostics)
        assert "m1" in str(error) and "m2" in str(error)

    def test_clean_composition_still_succeeds(self):
        program, invariant = self.build()
        fix = Action("fix", Predicate(lambda s: s["x"] == 1, "x=1"),
                     assign(x=0), reads={"x"}, writes={"x"})
        result = synthesis.add_nonmasking(
            program, FaultClass([], name="none"), invariant, TRUE,
            correctors=[fix],
        )
        assert "fix" in {a.name for a in result.program.actions}
