"""Unit tests for the weak-fairness liveness engine."""

from repro.core.action import Action, assign, choose
from repro.core.exploration import TransitionSystem
from repro.core.fairness import (
    check_converges_to,
    check_leads_to,
    fair_recurrent_sccs,
    liveness_violating_states,
    strongly_connected_components,
)
from repro.core.faults import set_variable
from repro.core.predicate import Predicate, TRUE
from repro.core.program import Program
from repro.core.state import State, Variable


def program(actions, domain=(0, 1, 2, 3), extra=()):
    variables = [Variable("x", list(domain))] + list(extra)
    return Program(variables, actions, name="toy")


X = lambda v: Predicate(lambda s, v=v: s["x"] == v, name=f"x={v}")  # noqa: E731


class TestSCC:
    def test_linear_graph_trivial_sccs(self):
        edges = {1: [2], 2: [3], 3: []}
        comps = strongly_connected_components([1, 2, 3], lambda n: edges[n])
        assert sorted(map(sorted, comps)) == [[1], [2], [3]]

    def test_cycle_detected(self):
        edges = {1: [2], 2: [1], 3: [1]}
        comps = strongly_connected_components([1, 2, 3], lambda n: edges[n])
        assert {frozenset(c) for c in comps} == {frozenset({1, 2}), frozenset({3})}

    def test_self_loop_is_singleton_scc(self):
        edges = {1: [1]}
        comps = strongly_connected_components([1], lambda n: edges[n])
        assert comps == [{1}]


class TestFairRecurrentSccs:
    def test_starved_action_disqualifies(self):
        # cycle 0<->1 via 'spin', while 'exit' is enabled everywhere and
        # leaves — weak fairness forces exit, so no fair cycle.
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        exit_ = Action("exit", Predicate(lambda s: s["x"] < 2), assign(x=2))
        p = program([spin, exit_])
        ts = TransitionSystem(p, [State(x=0)])
        region = {State(x=0), State(x=1)}
        assert fair_recurrent_sccs(ts, region) == []

    def test_intermittently_enabled_action_does_not_save(self):
        # 'exit' enabled only at x=1; a fair run may linger at the cycle
        # 0 -> 1 -> 0 because exit is not *continuously* enabled.
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        exit_ = Action("exit", X(1), assign(x=2))
        p = program([spin, exit_])
        ts = TransitionSystem(p, [State(x=0)])
        region = {State(x=0), State(x=1)}
        assert fair_recurrent_sccs(ts, region) == [region]

    def test_internal_edge_of_enabled_action_qualifies(self):
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        p = program([spin])
        ts = TransitionSystem(p, [State(x=0)])
        region = {State(x=0), State(x=1)}
        assert fair_recurrent_sccs(ts, region) == [region]

    def test_edge_filter_restricts(self):
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        p = program([spin])
        ts = TransitionSystem(p, [State(x=0)])
        region = {State(x=0), State(x=1)}
        assert fair_recurrent_sccs(ts, region, edge_filter=lambda s, a, t: False) == []


class TestLeadsTo:
    def test_straight_line_progress(self):
        inc = Action("inc", Predicate(lambda s: s["x"] < 3), assign(x=lambda s: s["x"] + 1))
        ts = TransitionSystem(program([inc]), [State(x=0)])
        assert check_leads_to(ts, X(0), X(3))

    def test_deadlock_violation_with_trace(self):
        inc = Action("inc", Predicate(lambda s: s["x"] < 2), assign(x=lambda s: s["x"] + 1))
        ts = TransitionSystem(program([inc]), [State(x=0)])
        result = check_leads_to(ts, X(0), X(3))
        assert not result
        assert result.counterexample.kind == "trace"
        assert result.counterexample.states[-1] == State(x=2)

    def test_fair_cycle_violation_with_lasso(self):
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        ts = TransitionSystem(program([spin]), [State(x=0)])
        result = check_leads_to(ts, X(0), X(2))
        assert not result
        assert result.counterexample.kind == "lasso"
        assert result.counterexample.loop_index is not None

    def test_fairness_forces_progress_out_of_cycle(self):
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        exit_ = Action("exit", Predicate(lambda s: s["x"] < 2), assign(x=2))
        ts = TransitionSystem(program([spin, exit_]), [State(x=0)])
        assert check_leads_to(ts, TRUE, X(2))

    def test_target_at_source_counts(self):
        inc = Action("inc", Predicate(lambda s: s["x"] < 1), assign(x=1))
        ts = TransitionSystem(program([inc]), [State(x=0)])
        assert check_leads_to(ts, X(0), X(0))

    def test_empty_source_region_passes(self):
        inc = Action("inc", Predicate(lambda s: s["x"] < 1), assign(x=1))
        ts = TransitionSystem(program([inc]), [State(x=0)])
        assert check_leads_to(ts, X(3), X(0))

    def test_fault_edges_carry_obligations(self):
        """An obligation raised at x=1 can be pushed by a fault to x=3
        (a dead end) — the checker must follow fault edges into the
        avoid-region."""
        inc = Action("inc", X(1), assign(x=2))
        fault = set_variable("x", 3, name="jump")
        ts = TransitionSystem(
            program([inc]), [State(x=1)], fault_actions=list(fault.actions)
        )
        result = check_leads_to(ts, X(1), X(2))
        assert not result, "fault can strand the obligation at x=3"

    def test_fault_edges_do_not_help_progress(self):
        """Only a fault edge reaches the target: progress must NOT count
        it, because nothing obliges faults to occur."""
        fault = set_variable("x", 2, name="help")
        spin = Action("spin", Predicate(lambda s: s["x"] < 2),
                      assign(x=lambda s: 1 - s["x"]))
        ts = TransitionSystem(
            program([spin]), [State(x=0)], fault_actions=list(fault.actions)
        )
        assert not check_leads_to(ts, X(0), X(2))


class TestConvergesTo:
    def test_paper_example_converges(self):
        inc = Action("inc", Predicate(lambda s: 0 < s["x"] < 3),
                     assign(x=lambda s: s["x"] + 1))
        ts = TransitionSystem(program([inc]), [State(x=1)])
        origin = Predicate(lambda s: s["x"] >= 1, "x≥1")
        goal = Predicate(lambda s: s["x"] == 3, "x=3")
        assert check_converges_to(ts, origin, goal)

    def test_origin_must_be_closed(self):
        dec = Action("dec", Predicate(lambda s: s["x"] > 0),
                     assign(x=lambda s: s["x"] - 1))
        ts = TransitionSystem(program([dec]), [State(x=2)])
        origin = Predicate(lambda s: s["x"] == 2, "x=2")
        assert not check_converges_to(ts, origin, X(0))


class TestLivenessViolatingStates:
    def test_identifies_dead_branch(self):
        # from x=0 choose x=1 (leads to 3) or x=2 (dead end)
        split = Action("split", X(0), choose(assign(x=1), assign(x=2)))
        go = Action("go", X(1), assign(x=3))
        ts = TransitionSystem(program([split, go]), [State(x=0)])
        bad = liveness_violating_states(ts, TRUE, X(3))
        assert State(x=2) in bad
        assert State(x=0) in bad, "x=0 can reach the dead end"
        assert State(x=1) not in bad
        assert State(x=3) not in bad

    def test_empty_when_all_converge(self):
        inc = Action("inc", Predicate(lambda s: s["x"] < 3),
                     assign(x=lambda s: s["x"] + 1))
        ts = TransitionSystem(program([inc]), [State(x=0)])
        assert liveness_violating_states(ts, TRUE, X(3)) == set()
