"""Sections 3.3, 4.3, 5.1 — the memory-access ladder (Figures 1-3)."""

import pytest

from repro.core import (
    BOTTOM,
    State,
    TRUE,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    refines_program,
    refines_spec,
    violates_spec,
)
from repro.programs import memory_access


class TestModel:
    def test_variable_domains(self, memory):
        assert memory.p.variable("mem").domain == (BOTTOM, 1)
        assert set(memory.pf.variable_names) == {"mem", "data", "Z1"}

    def test_value_must_be_in_domain(self):
        with pytest.raises(ValueError):
            memory_access.build(value=7, data_domain=(0, 1))

    def test_parameterizable(self):
        model = memory_access.build(value=2, data_domain=(0, 1, 2))
        assert model.value == 2
        assert refines_spec(model.p, model.spec, model.S_p)

    def test_absent_read_is_arbitrary(self, memory):
        state = State(mem=BOTTOM, data=BOTTOM)
        successors = memory.p.action("p1").successors(state)
        assert {t["data"] for t in successors} == {0, 1}


class TestIntolerantP:
    def test_refines_spec_without_faults(self, memory):
        assert refines_spec(memory.p, memory.spec, memory.S_p)

    def test_violates_safety_under_faults(self, memory):
        violation = violates_spec(
            memory.p, memory.spec.safety_part(), memory.S_p,
            fault_actions=list(memory.fault_anytime.actions),
        )
        assert violation
        assert violation.counterexample is not None


class TestFigure1FailSafe(object):
    def test_pf_failsafe_tolerant(self, memory):
        assert is_failsafe_tolerant(
            memory.pf, memory.fault_before_witness, memory.spec,
            memory.S_pf, memory.T_pf,
        )

    def test_pf_blocks_after_fault(self, memory):
        """After a page fault, pf deadlocks (never assigns data) —
        the fail-safe behaviour the paper describes."""
        state = State(mem=BOTTOM, data=BOTTOM, Z1=False)
        assert memory.pf.is_deadlocked(state)

    def test_detector_structure(self, memory):
        """pf1 is the detector action: it truthifies Z1 only under X1."""
        for state in memory.pf.states():
            for _, nxt in [("pf1", t) for t in
                           memory.pf.action("pf1").successors(state)]:
                assert memory.X1(state), "pf1 fires only when X1 holds"
                assert nxt["Z1"]


class TestFigure2Nonmasking:
    def test_pn_nonmasking_tolerant(self, memory):
        assert is_nonmasking_tolerant(
            memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        )

    def test_pn_can_transiently_err(self, memory):
        """The paper: 'it may set data to an incorrect value'."""
        state = State(mem=BOTTOM, data=BOTTOM)
        successors = memory.pn.action("pn2").successors(state)
        assert any(t["data"] == 0 for t in successors)

    def test_corrector_structure(self, memory):
        """pn1 re-adds the missing entry with the correct value."""
        state = State(mem=BOTTOM, data=0)
        (fixed,) = memory.pn.action("pn1").successors(state)
        assert fixed["mem"] == memory.value


class TestFigure3Masking:
    def test_pm_masking_tolerant(self, memory):
        assert is_masking_tolerant(
            memory.pm, memory.fault_before_witness, memory.spec,
            memory.S_pm, memory.T_pm,
        )

    def test_pm_never_reads_absent_memory(self, memory):
        """pm3 is guarded by Z1 and U1 keeps Z1 ⇒ X1, so within the
        span a read always sees the entry."""
        from repro.core.refinement import system_from

        ts = memory.fault_before_witness.system(memory.pm, memory.T_pm)
        for state in ts.states:
            if memory.pm.action("pm3").enabled(state):
                assert state["mem"] is not BOTTOM

    def test_pm_refines_both_ancestors(self, memory):
        assert refines_program(memory.pm, memory.pn, memory.S_pm)
        assert refines_program(memory.pm, memory.p, memory.S_pm)


class TestFaultModel:
    def test_fault_before_witness_preserves_u1(self, memory):
        for state in memory.pf.states():
            if not memory.U1(state):
                continue
            for action in memory.fault_before_witness.actions:
                for nxt in action.successors(state):
                    assert memory.U1(nxt)

    def test_anytime_fault_only_removes(self, memory):
        for state in memory.p.states():
            for action in memory.fault_anytime.actions:
                for nxt in action.successors(state):
                    assert nxt["mem"] is BOTTOM
