"""Section 6.2 — Byzantine agreement by composition (n = 4, f = 1)."""

import pytest

from repro.core import (
    BOTTOM,
    State,
    is_failsafe_tolerant,
    is_masking_tolerant,
    refines_spec,
    violates_spec,
)
from repro.programs.byzantine import build, corrdecn, majority


class TestMajority:
    def test_simple(self):
        assert majority([0, 0, 1]) == 0
        assert majority([1, 1, 1]) == 1

    def test_no_strict_majority_rejected(self):
        with pytest.raises(ValueError):
            majority([0, 1])


class TestCorrdecn:
    def test_honest_general(self, byz):
        state = next(iter(byz.ib.states()))
        state = state.assign(bg=False, dg=1)
        assert corrdecn(state) == 1

    def test_byzantine_general_uses_majority(self, byz):
        state = next(iter(byz.ib.states()))
        state = state.assign(bg=True, d1=0, d2=0, d3=1)
        assert corrdecn(state) == 0


class TestPaperClaims:
    def test_ib_refines_spec_without_faults(self, byz):
        assert refines_spec(byz.ib, byz.spec, byz.invariant_ib)

    def test_ib_violates_agreement_under_faults(self, byz):
        """A Byzantine general sends different values to different
        processes; naked IB (composed with the Byzantine behaviour)
        outputs them — agreement dies."""
        assert violates_spec(
            byz.ib_with_byz, byz.spec.safety_part(), byz.invariant_ib,
            fault_actions=list(byz.faults.actions),
        )

    def test_failsafe_composition(self, byz):
        assert is_failsafe_tolerant(
            byz.failsafe, byz.faults, byz.spec, byz.invariant, byz.span
        )

    def test_failsafe_is_not_masking(self, byz):
        """Without CB, a process whose copy is the minority blocks
        forever (the paper: 'one non-general process will be blocked')."""
        assert not is_masking_tolerant(
            byz.failsafe, byz.faults, byz.spec, byz.invariant, byz.span
        )

    def test_masking_composition(self, byz):
        assert is_masking_tolerant(
            byz.masking, byz.faults, byz.spec, byz.invariant, byz.span
        )


class TestWitnessStructure:
    def test_witness_requires_all_copies(self, byz):
        state = State(
            dg=1, bg=False,
            d1=1, out1=BOTTOM, b1=False,
            d2=BOTTOM, out2=BOTTOM, b2=False,
            d3=1, out3=BOTTOM, b3=False,
        )
        assert not byz.witnesses[1](state)

    def test_witness_requires_majority_match(self, byz):
        state = State(
            dg=1, bg=True,
            d1=0, out1=BOTTOM, b1=False,
            d2=1, out2=BOTTOM, b2=False,
            d3=1, out3=BOTTOM, b3=False,
        )
        assert not byz.witnesses[1](state), "d1 is the minority"
        assert byz.witnesses[2](state)

    def test_witness_implies_detection_within_span(self, byz):
        """Safeness of DB.j: within T, the witness implies
        d.j = corrdecn."""
        from repro.core.refinement import start_states_of

        for state in start_states_of(byz.masking, byz.span):
            for j, witness in byz.witnesses.items():
                if witness(state) and not state[f"b{j}"]:
                    assert byz.detections[j](state)

    def test_corrector_fixes_minority(self, byz):
        state = State(
            dg=1, bg=True,
            d1=0, out1=BOTTOM, b1=False,
            d2=1, out2=BOTTOM, b2=False,
            d3=1, out3=BOTTOM, b3=False,
        )
        (fixed,) = byz.masking.action("CB1.1").successors(state)
        assert fixed["d1"] == 1

    def test_corrector_idle_on_majority_holders(self, byz):
        state = State(
            dg=1, bg=True,
            d1=0, out1=BOTTOM, b1=False,
            d2=1, out2=BOTTOM, b2=False,
            d3=1, out3=BOTTOM, b3=False,
        )
        assert not byz.masking.action("CB1.2").enabled(state)


class TestByzantineBehaviour:
    def test_lies_never_unsend(self, byz):
        """Byzantine writes range over real values only — ⊥ cannot be
        restored."""
        for action in byz.masking.actions:
            if not action.name.startswith("BYZ"):
                continue
            for state in [
                State(
                    dg=1, bg=True,
                    d1=1, out1=1, b1=False,
                    d2=1, out2=BOTTOM, b2=False,
                    d3=BOTTOM, out3=BOTTOM, b3=False,
                )
            ]:
                for nxt in action.successors(state):
                    assert nxt["dg"] is not BOTTOM

    def test_at_most_one_byzantine(self, byz):
        """Every fault latch is guarded on nobody being Byzantine."""
        one_byz = State(
            dg=1, bg=True,
            d1=1, out1=BOTTOM, b1=False,
            d2=1, out2=BOTTOM, b2=False,
            d3=1, out3=BOTTOM, b3=False,
        )
        for action in byz.faults.actions:
            assert not action.successors(one_byz)
