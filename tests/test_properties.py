"""Property-based cross-validation of the two semantics.

The library deliberately has two independent implementations of the
paper's definitions: the graph-based model checker
(:mod:`repro.core.fairness`, :mod:`repro.core.refinement`) and the
explicit sequence semantics (:mod:`repro.core.computation`,
:meth:`Spec.holds_on`).  These tests generate random small programs and
check the engines against each other and against the definitions'
algebraic consequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Action,
    Predicate,
    Program,
    State,
    TRUE,
    Variable,
    assign,
    enumerate_computations,
)
from repro.core.exploration import TransitionSystem
from repro.core.fairness import check_leads_to
from repro.core.invariants import (
    is_detection_predicate,
    reachable_invariant,
    weakest_detection_predicate,
)
from repro.core.specification import Spec, StateInvariant, TransitionInvariant

DOMAIN = [0, 1, 2]


@st.composite
def small_programs(draw):
    """A random program over one variable x ∈ {0,1,2}: up to three
    deterministic actions of the form 'x=a --> x:=b'."""
    action_count = draw(st.integers(min_value=1, max_value=3))
    actions = []
    for index in range(action_count):
        source = draw(st.sampled_from(DOMAIN))
        target = draw(st.sampled_from(DOMAIN))
        actions.append(
            Action(
                f"a{index}",
                Predicate(lambda s, a=source: s["x"] == a, f"x={source}"),
                assign(x=target),
            )
        )
    return Program([Variable("x", DOMAIN)], actions, name="random")


values = st.sampled_from(DOMAIN)


@settings(max_examples=200, deadline=None)
@given(program=small_programs(), start=values, goal=values)
def test_leads_to_agrees_with_exhaustive_enumeration(program, start, goal):
    """check_leads_to == 'every complete enumerated computation
    discharges the obligation', on programs small enough to enumerate.

    With single-source deterministic-per-action programs over 3 states,
    every computation either deadlocks within 4 steps or enters a cycle;
    enumeration to length 8 with cycle awareness decides the property:
    a truncated computation revisiting a state pattern corresponds to a
    potential fair cycle, which the graph engine judges — so we compare
    only on complete computations plus graph-confirmed cycles.
    """
    start_state = State(x=start)
    target = Predicate(lambda s, g=goal: s["x"] == g, f"x={goal}")
    ts = TransitionSystem(program, [start_state])
    verdict = bool(check_leads_to(ts, TRUE, target))

    # Ground truth, mode 1: a complete computation that never reaches
    # the goal refutes leads-to.
    for computation in enumerate_computations(program, start_state, max_length=10):
        if computation.complete and not any(
            target(s) for s in computation.states
        ):
            assert not verdict
            return

    # Ground truth, mode 2: if every reachable state can fairly reach
    # the goal... defer to a simple structural check: if verdict is
    # False there must exist either a deadlock avoiding the goal
    # (covered above for reachable-from-start deadlocks) or a cycle
    # avoiding the goal.
    if not verdict:
        region = {s for s in ts.states if not target(s)}
        has_deadlock = any(program.is_deadlocked(s) for s in region)
        has_cycle = _has_cycle(ts, region)
        assert has_deadlock or has_cycle
    else:
        # verdict True: no complete computation above avoided the goal;
        # additionally no goal-free cycle may be fairly recurrent.
        from repro.core.fairness import fair_recurrent_sccs

        region = {s for s in ts.states if not target(s)}
        assert fair_recurrent_sccs(ts, region) == []


def _has_cycle(ts, region):
    from repro.core.fairness import strongly_connected_components

    def successors(state):
        return [t for _, t in ts.program_edges_from(state) if t in region]

    for component in strongly_connected_components(region, successors):
        internal = [
            t for s in component for _, t in ts.program_edges_from(s)
            if t in component
        ]
        if len(component) > 1 or any(t in component for t in internal):
            return True
    return False


@settings(max_examples=200, deadline=None)
@given(program=small_programs(), start=values)
def test_reachable_invariant_is_closed(program, start):
    invariant = reachable_invariant(program, [State(x=start)])
    for state in program.states():
        if not invariant(state):
            continue
        for _, nxt in program.successors(state):
            assert invariant(nxt)


@settings(max_examples=200, deadline=None)
@given(program=small_programs(), forbidden=values)
def test_weakest_detection_predicate_is_weakest(program, forbidden):
    """(a) the computed predicate IS a detection predicate; (b) no
    strictly weaker extensional predicate is."""
    spec = Spec(
        [StateInvariant(
            Predicate(lambda s, f=forbidden: s["x"] != f, f"x≠{forbidden}")
        )],
        name="avoid",
    )
    states = list(program.states())
    for action in program.actions:
        weakest = weakest_detection_predicate(action, spec, states)
        assert is_detection_predicate(weakest, action, spec, states)
        for state in states:
            if weakest(state):
                continue
            widened = Predicate(
                lambda s, w=weakest, extra=state: w(s) or s == extra,
                "widened",
            )
            assert not is_detection_predicate(widened, action, spec, states)


@settings(max_examples=150, deadline=None)
@given(program=small_programs(), start=values)
def test_enumerated_computations_are_valid_paths(program, start):
    """Every enumerated step is a genuine transition; maximal
    computations end deadlocked."""
    for computation in enumerate_computations(
        program, State(x=start), max_length=6
    ):
        for i, label in enumerate(computation.actions):
            source = computation.states[i]
            target_state = computation.states[i + 1]
            action = program.action(label.rstrip("!"))
            assert target_state in action.successors(source)
        if computation.complete:
            assert program.is_deadlocked(computation.states[-1])


@settings(max_examples=150, deadline=None)
@given(program=small_programs(), start=values, forbidden=values)
def test_safety_graph_check_agrees_with_sequences(program, start, forbidden):
    """A state-invariant spec holds on the transition system iff it
    holds on every enumerated computation prefix."""
    spec = Spec(
        [StateInvariant(
            Predicate(lambda s, f=forbidden: s["x"] != f, f"x≠{forbidden}")
        )],
        name="avoid",
    )
    ts = TransitionSystem(program, [State(x=start)])
    graph_verdict = bool(spec.check(ts))
    sequence_verdict = all(
        spec.holds_on(c.states, complete=c.complete)
        for c in enumerate_computations(program, State(x=start), max_length=8)
    )
    assert graph_verdict == sequence_verdict


@settings(max_examples=150, deadline=None)
@given(program=small_programs(), start=values)
def test_transition_invariant_cross_semantics(program, start):
    monotone = Spec(
        [TransitionInvariant(lambda s, t: t["x"] >= s["x"], "monotone")],
        name="monotone",
    )
    ts = TransitionSystem(program, [State(x=start)])
    graph_verdict = bool(monotone.check(ts))
    sequence_verdict = all(
        monotone.holds_on(c.states, complete=c.complete)
        for c in enumerate_computations(program, State(x=start), max_length=8)
    )
    assert graph_verdict == sequence_verdict
