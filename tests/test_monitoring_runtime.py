"""The online monitoring runtime: incremental syndromes, frame-aware
re-evaluation, latency measurement, asyncio sources."""

import asyncio
import io
import json
import socket

import pytest

from repro.core.predicate import Predicate, var_eq
from repro.core.state import Variable
from repro.monitoring import (
    BankDetector,
    DetectorBank,
    MonitorRuntime,
    SyndromeDecoder,
    TelemetrySink,
    aiter_events,
    attach_monitors,
    campaign_bank,
    format_monitor_summary,
    jsonl_source,
    latency_histogram,
    normalize_event,
    open_socket_source,
    socket_source,
)


def toy_bank(counters=None):
    """Three detectors over (x, y); optionally count predicate calls."""

    def counting(name, fn):
        def wrapped(values, _fn=fn, _name=name):
            if counters is not None:
                counters[_name] = counters.get(_name, 0) + 1
            return _fn(values)

        return wrapped

    def pred(name, fn, reads):
        return BankDetector(
            name,
            Predicate(
                lambda s: fn([s["x"], s["y"]]),
                name=name,
                values_builder=lambda index, n=name, f=fn: counting(n, f),
            ),
            frozenset(reads),
        )

    variables = [Variable("x", (0, 1, 2)), Variable("y", (0, 1))]
    return DetectorBank(
        [
            pred("x_hi", lambda v: v[0] == 2, {"x"}),
            pred("y_hot", lambda v: v[1] == 1, {"y"}),
            pred("either", lambda v: v[0] == 2 or v[1] == 1, {"x", "y"}),
        ],
        variables,
        name="toy",
    )


class TestFeed:
    def test_initial_state_defaults_to_first_domain_values(self):
        runtime = MonitorRuntime(toy_bank())
        assert runtime.values() == {"x": 0, "y": 0}
        assert runtime.syndrome == 0

    def test_explicit_initial_values(self):
        runtime = MonitorRuntime(toy_bank(), initial={"x": 2})
        assert runtime.syndrome == 0b101  # x_hi and either
        with pytest.raises(KeyError):
            MonitorRuntime(toy_bank(), initial={"zz": 1})

    def test_incremental_matches_full_recompute(self):
        import random

        bank = toy_bank()
        runtime = MonitorRuntime(bank)
        rng = random.Random(13)
        for step in range(300):
            name = rng.choice(["x", "y"])
            value = rng.choice((0, 1, 2) if name == "x" else (0, 1))
            syndrome = runtime.feed(
                {"time": float(step), "writes": {name: value}}
            )
            expected = bank.syndrome_of_values(
                [runtime.values()["x"], runtime.values()["y"]]
            )
            assert syndrome == expected

    def test_frame_aware_skipping(self):
        counters = {}
        bank = toy_bank(counters)
        runtime = MonitorRuntime(bank)
        counters.clear()  # drop the initial full evaluation
        runtime.feed({"time": 1.0, "writes": {"y": 1}})
        # y_hot and either read y; x_hi must not have been re-evaluated
        assert counters == {"y_hot": 1, "either": 1}

    def test_unchanged_write_is_free(self):
        counters = {}
        bank = toy_bank(counters)
        runtime = MonitorRuntime(bank)
        counters.clear()
        runtime.feed({"time": 1.0, "writes": {"x": 0}})  # x is already 0
        assert counters == {}

    def test_unknown_variables_ignored(self):
        runtime = MonitorRuntime(toy_bank())
        assert runtime.feed({"time": 1.0, "writes": {"other": 5}}) == 0

    def test_drain_equals_repeated_feed(self):
        import random

        rng = random.Random(5)
        events = [
            {
                "time": float(i),
                "writes": {
                    rng.choice(["x", "y"]): rng.choice((0, 1)),
                },
            }
            for i in range(100)
        ]
        one = MonitorRuntime(toy_bank())
        for event in events:
            one.feed(event)
        two = MonitorRuntime(toy_bank())
        assert two.drain(events) == len(events)
        assert two.syndrome == one.syndrome
        assert two.values() == one.values()
        assert two.telemetry.transitions == one.telemetry.transitions
        assert two.events == one.events

    def test_reset_restores_initial_values(self):
        runtime = MonitorRuntime(toy_bank())
        runtime.feed({"time": 1.0, "writes": {"x": 2, "y": 1}})
        assert runtime.syndrome != 0
        runtime.feed({"time": 2.0, "kind": "reset"})
        assert runtime.syndrome == 0
        assert runtime.values() == {"x": 0, "y": 0}
        assert runtime.telemetry.resets == 1


class TestLatencyAndCallbacks:
    def test_detection_latency_measured_from_fault(self):
        runtime = MonitorRuntime(toy_bank())
        runtime.feed({"time": 3.0, "kind": "crash"})
        runtime.feed({"time": 4.5, "writes": {"x": 2}})
        assert runtime.telemetry.latencies == [pytest.approx(1.5)]

    def test_first_fault_wins_the_window(self):
        runtime = MonitorRuntime(toy_bank())
        runtime.feed({"time": 1.0, "kind": "fault"})
        runtime.feed({"time": 2.0, "kind": "corrupt"})  # window already open
        runtime.feed({"time": 3.0, "writes": {"y": 1}})
        assert runtime.telemetry.latencies == [pytest.approx(2.0)]

    def test_no_fault_no_latency(self):
        runtime = MonitorRuntime(toy_bank())
        runtime.feed({"time": 1.0, "writes": {"y": 1}})
        assert runtime.telemetry.latencies == []

    def test_on_syndrome_callbacks(self):
        runtime = MonitorRuntime(toy_bank())
        seen = []

        @runtime.on_syndrome
        def observe(rt, old, new, time):
            seen.append((old, new, time))

        runtime.feed({"time": 1.0, "writes": {"x": 2}})
        runtime.feed({"time": 2.0, "writes": {"x": 2}})  # no change
        runtime.feed({"time": 3.0, "writes": {"x": 0}})
        assert seen == [(0, 0b101, 1.0), (0b101, 0, 3.0)]

    def test_corrector_fires_on_decoded_syndrome(self):
        bank = toy_bank()
        decoder = SyndromeDecoder.for_bank(bank)
        fired = []
        decoder.register_for(
            bank, ["x_hi", "either"],
            corrector=lambda rt, decoded, time: fired.append(
                (decoded.entry.name, decoded.exact, time)
            ),
            name="fix_x",
        )
        runtime = MonitorRuntime(bank, decoder=decoder)
        runtime.feed({"time": 2.0, "writes": {"x": 2}})
        assert fired == [("fix_x", True, 2.0)]
        assert [entry.entry.name for _, entry in runtime.corrections] == \
            ["fix_x"]

    def test_telemetry_stream_and_summary(self):
        stream = io.StringIO()
        bank = toy_bank()
        telemetry = TelemetrySink(bank.detector_names, stream=stream)
        runtime = MonitorRuntime(bank, telemetry=telemetry)
        summary = runtime.run_sync([
            {"time": 1.0, "kind": "fault"},
            {"time": 2.0, "writes": {"x": 2}},
            {"time": 3.0, "writes": {"x": 0}},
        ])
        records = [json.loads(line) for line in
                   stream.getvalue().strip().splitlines()]
        kinds = [r["event"] for r in records]
        assert kinds == ["syndrome", "detection", "syndrome"]
        assert all("schema_version" in r for r in records)
        assert summary["events"] == 3
        assert summary["transitions"] == 2
        assert summary["fire_counts"] == {"x_hi": 1, "y_hot": 0, "either": 1}
        assert summary["detection_latency"]["n"] == 1
        text = format_monitor_summary(summary)
        assert "3 events" in text and "x_hi" in text

    def test_latency_histogram_buckets(self):
        histogram = latency_histogram([0.3, 0.9, 3.0, 100.0], (0.5, 1.0, 4.0))
        assert histogram == [
            {"le": 0.5, "count": 1},
            {"le": 1.0, "count": 1},
            {"le": 4.0, "count": 1},
            {"le": "inf", "count": 1},
        ]


class TestAsyncSources:
    def test_run_over_async_iterable(self):
        runtime = MonitorRuntime(toy_bank())
        events = [
            {"time": 1.0, "writes": {"x": 2}},
            {"time": 2.0, "writes": {"y": 1}},
        ]
        summary = asyncio.run(runtime.run(aiter_events(events)))
        assert summary["events"] == 2
        assert runtime.syndrome == 0b111

    def test_jsonl_source(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"time": 1.0, "writes": {"x": 2}}\n'
            "\n"
            '{"time": 2.0, "kind": "crash"}\n'
        )
        runtime = MonitorRuntime(toy_bank())
        summary = asyncio.run(runtime.run(jsonl_source(path)))
        assert summary["events"] == 2
        assert runtime.syndrome == 0b101

    def test_socket_source_over_socketpair(self):
        left, right = socket.socketpair()

        async def scenario():
            runtime = MonitorRuntime(toy_bank())
            feed = [
                {"time": 1.0, "writes": {"y": 1}},
                {"time": 2.0, "writes": {"y": 0}},
            ]

            async def producer():
                loop = asyncio.get_running_loop()
                payload = "".join(
                    json.dumps(e) + "\n" for e in feed
                ).encode()
                await loop.sock_sendall(left, payload)
                left.close()

            async def consumer():
                return await runtime.run(open_socket_source(sock=right))

            _, summary = await asyncio.gather(producer(), consumer())
            return runtime, summary

        runtime, summary = asyncio.run(scenario())
        assert summary["events"] == 2
        assert runtime.syndrome == 0
        assert runtime.telemetry.transitions == 2

    def test_normalize_event_passthrough_and_campaign(self):
        raw = normalize_event({"time": 2.0, "writes": {"x": 1}})
        assert raw == {"time": 2.0, "kind": "write", "writes": {"x": 1}}
        translated = normalize_event(
            {"event": "transition", "monitor": "safety",
             "time": 3.0, "value": False}
        )
        assert translated == {
            "time": 3.0, "kind": "write", "writes": {"safety": False},
        }
        assert normalize_event({"event": "trial_end"}) is None


class TestLiveMonitors:
    def test_attach_monitors_feeds_runtime_during_run(self):
        from repro.sim import Network, PredicateMonitor, SimProcess

        class Stepper(SimProcess):
            def __init__(self, pid):
                super().__init__(pid)
                self.x = 0

            def on_start(self):
                self.set_timer("tick", 1.0)

            def on_timer(self, name):
                self.x += 1
                self.set_timer("tick", 1.0)

        network = Network(seed=0)
        network.add_process(Stepper("p"))
        monitor = PredicateMonitor(
            network, lambda s: s["p"]["x"] < 3, period=1.0, horizon=6.0,
            name="safety",
        )
        bank = campaign_bank(["safety"])
        runtime = MonitorRuntime(bank)
        attach_monitors(runtime, [monitor])
        network.run(until=6.0)
        # x reaches 3 at t=3: the monitor flips and the bank fires live
        assert runtime.telemetry.fires == [1]
        assert runtime.syndrome == 0b1
        # the bridge preserved the monitor's own sample record
        assert monitor.samples
