"""Quotient exploration vs. unreduced oracles.

Symmetry declarations are *claims* and the quotient trusts them; this
suite is the exhaustive net behind the trust (the other net, lint rule
DC106, probes differentially).  For every bundled symmetric scenario it
pins the quotient's verdicts — closure, deadlocks, tolerance class,
synthesized invariants up to orbit — against the unreduced system, and
it unit-tests the canonicalization machinery itself: idempotence,
constancy on orbits, brute-force minimality, interner round-trips, and
the refusal paths for undeclared or non-invariant inputs.
"""

import itertools

import pytest

from repro.core import (
    BOTTOM,
    Predicate,
    ReplicaSymmetry,
    RingRotation,
    SymmetryError,
    TRUE,
    TransitionSystem,
    explored_system,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    largest_invariant_for_safety,
    state_space,
)
from repro.programs import byzantine, tmr, token_ring


def _span_states(model_program, span):
    return [s for s in state_space(model_program.variables) if span.fn(s)]


def _quotient_pair(program, starts, faults):
    full = explored_system(program, starts, faults)
    quot = explored_system(program, starts, faults, symmetric=True)
    return full, quot


# -- canonicalization unit tests ---------------------------------------------

class TestCanonicalizer:
    def test_idempotent_and_pointer_unique(self, tmr_model):
        program = tmr_model.tmr
        canon = program.symmetry.canonicalizer(program).canonical
        for state in state_space(program.variables):
            rep = canon(state)
            assert canon(rep) is rep
            assert canon(state) is rep  # memoized to the pooled object

    def test_constant_on_orbits(self, tmr_model, byz, ring):
        for program in (tmr_model.tmr, byz.masking, ring.ring):
            canon = program.symmetry.canonicalizer(program).canonical
            for state in list(state_space(program.variables))[:200]:
                for generator in program.symmetry.generators():
                    assert canon(generator.apply(state)) is canon(state)

    def test_minimality_against_brute_force(self, tmr_model):
        """The representative is the minimum over all |G| images."""
        program = tmr_model.tmr
        symmetry = program.symmetry
        canon = symmetry.canonicalizer(program).canonical
        elements = [
            symmetry.element(perm)
            for perm in itertools.permutations(range(3))
        ]
        for state in state_space(program.variables):
            orbit = {g.apply(state) for g in elements}
            assert canon(state) in orbit
            # every orbit member canonicalizes to the same representative
            assert len({canon(member) for member in orbit}) == 1

    def test_interner_round_trip(self, tmr_model):
        program = tmr_model.tmr
        interner = program.symmetry.canonicalizer(program)
        states = list(state_space(program.variables))
        reps = {interner.canonical(s) for s in states}
        assert all(s in interner for s in states)
        # the memo holds every queried state plus the pooled reps
        assert len(interner) == len(states)
        assert all(interner.canonical(r) is r for r in reps)

    def test_value_rotation_divides_by_k(self, ring):
        states = list(state_space(ring.ring.variables))
        canon = ring.ring.symmetry.canonicalizer(ring.ring).canonical
        reps = {canon(s) for s in states}
        assert len(states) == ring.k ** ring.size
        assert len(reps) * ring.k == len(states)


class TestRefusals:
    def test_symmetric_mode_needs_declaration(self, memory):
        with pytest.raises(SymmetryError):
            TransitionSystem(
                memory.p, list(state_space(memory.p.variables))[:1],
                symmetric=True,
            )

    def test_asymmetric_predicate_refused(self, tmr_model):
        program = tmr_model.tmr
        x_good = Predicate(lambda s: s["x"] == 1, name="x=uncor")
        with pytest.raises(SymmetryError):
            program.symmetry.require_predicate_invariant(
                x_good, program.variables, "test"
            )

    def test_asymmetric_tolerance_check_refused(self, tmr_model):
        m = tmr_model
        lopsided = Predicate(lambda s: s["x"] == 1, name="x=uncor")
        with pytest.raises(SymmetryError):
            is_masking_tolerant(
                m.tmr, m.faults, m.spec, lopsided, m.span, symmetric=True
            )

    def test_misdeclared_blocks_rejected(self, tmr_model):
        bad = ReplicaSymmetry((("x", "y"), ("z", "out")))
        with pytest.raises(SymmetryError):
            bad.validate(tmr_model.tmr.variables)

    def test_duplicate_action_orbits_rejected(self):
        with pytest.raises(SymmetryError):
            ReplicaSymmetry(
                (("x",), ("y",)),
                action_orbits=[("A", "B"), ("B", "C")],
            )

    def test_cache_keys_separate(self, tmr_model):
        m = tmr_model
        starts = _span_states(m.tmr, m.span)
        full, quot = _quotient_pair(m.tmr, starts, m.faults)
        assert full is not quot
        assert len(quot.states) < len(full.states)
        assert explored_system(m.tmr, starts, m.faults, symmetric=True) is quot


# -- quotient-vs-oracle parity -----------------------------------------------

def _assert_graph_parity(full, quot, program):
    """Deadlocks and closure agree between the quotient and the full
    graph (quotient sets are the canonical images of the full sets)."""
    canon = program.symmetry.canonicalizer(program).canonical
    assert {canon(s) for s in full.states} == set(quot.states)
    assert {canon(s) for s in full.deadlock_states()} == set(
        quot.deadlock_states()
    )


class TestTmrParity:
    def test_masking_verdict(self, tmr_model):
        m = tmr_model
        oracle = is_masking_tolerant(m.tmr, m.faults, m.spec, m.invariant, m.span)
        quotient = is_masking_tolerant(
            m.tmr, m.faults, m.spec, m.invariant, m.span, symmetric=True
        )
        assert bool(oracle) and bool(quotient)

    def test_graph_parity(self, tmr_model):
        m = tmr_model
        full, quot = _quotient_pair(m.tmr, _span_states(m.tmr, m.span), m.faults)
        _assert_graph_parity(full, quot, m.tmr)
        assert len(quot.states) < len(full.states)

    def test_closure_parity(self, tmr_model):
        m = tmr_model
        full, quot = _quotient_pair(m.tmr, _span_states(m.tmr, m.span), m.faults)
        for predicate in (m.invariant, m.span):
            assert bool(full.is_closed(predicate)) == bool(
                quot.is_closed(predicate)
            )

    def test_synthesized_invariant_is_orbit_union(self, tmr_model):
        """largest_invariant_for_safety lands on a union of orbits, so
        its verdict reads identically off either graph."""
        m = tmr_model
        gfp = largest_invariant_for_safety(m.tmr, m.spec)
        canon = m.tmr.symmetry.canonicalizer(m.tmr).canonical
        for state in state_space(m.tmr.variables):
            assert bool(gfp.fn(state)) == bool(gfp.fn(canon(state)))


class TestNmrParity:
    def test_masking_verdict_and_reduction(self, nmr5):
        m = nmr5
        oracle = is_masking_tolerant(m.nmr, m.faults, m.spec, m.invariant, m.span)
        quotient = is_masking_tolerant(
            m.nmr, m.faults, m.spec, m.invariant, m.span, symmetric=True
        )
        assert bool(oracle) and bool(quotient)

    def test_reduction_at_least_3x(self, nmr5):
        m = nmr5
        full, quot = _quotient_pair(m.nmr, _span_states(m.nmr, m.span), m.faults)
        _assert_graph_parity(full, quot, m.nmr)
        # reachable input vectors collapse to corruption *counts*:
        # sum(C(5,j), j<=2) = 16 vectors -> 3 orbits, x2 for out
        assert len(full.states) == 32
        assert len(quot.states) == 6
        assert len(full.states) >= 3 * len(quot.states)


class TestByzantineParity:
    def test_failsafe_verdict(self, byz):
        b = byz
        oracle = is_failsafe_tolerant(
            b.failsafe, b.faults, b.spec, b.invariant, b.span
        )
        quotient = is_failsafe_tolerant(
            b.failsafe, b.faults, b.spec, b.invariant, b.span, symmetric=True
        )
        assert bool(oracle) and bool(quotient)

    def test_masking_verdict(self, byz):
        """The regression that motivated orbit-granular fairness: the
        quotient re-sorts replica blocks along edges, so no *single*
        IB2.j stays enabled across a lie-cycle SCC even though the full
        graph starves one; judging starvation per declared action orbit
        restores the oracle verdict."""
        b = byz
        oracle = is_masking_tolerant(
            b.masking, b.faults, b.spec, b.invariant, b.span
        )
        quotient = is_masking_tolerant(
            b.masking, b.faults, b.spec, b.invariant, b.span, symmetric=True
        )
        assert bool(oracle) and bool(quotient)

    def test_reduction_at_least_3x(self, byz):
        b = byz
        full, quot = _quotient_pair(
            b.masking, _span_states(b.masking, b.span), b.faults
        )
        _assert_graph_parity(full, quot, b.masking)
        assert len(full.states) >= 3 * len(quot.states)

    def test_family_builder_matches_bundled_model(self):
        """build_family(3) is the generalized construction; its quotient
        verdicts and state counts match the hand-built build()."""
        b3 = byzantine.build_family((1, 2, 3))
        b = byzantine.build()
        verdict = is_masking_tolerant(
            b3.masking, b3.faults, b3.spec, b3.invariant, b3.span,
            symmetric=True,
        )
        assert bool(verdict)
        for model in (b, b3):
            starts = _span_states(model.masking, model.span)
            quot = explored_system(
                model.masking, starts, model.faults, symmetric=True
            )
            full = explored_system(model.masking, starts, model.faults)
            assert len(full.states) == 520
            assert len(quot.states) == 144


class TestTokenRingParity:
    def test_nonmasking_verdict(self, ring):
        r = ring
        oracle = is_nonmasking_tolerant(
            r.ring, r.faults, r.spec, r.invariant, TRUE
        )
        quotient = is_nonmasking_tolerant(
            r.ring, r.faults, r.spec, r.invariant, TRUE, symmetric=True
        )
        assert bool(oracle) and bool(quotient)

    def test_quotient_divides_by_k(self, ring):
        r = ring
        starts = list(state_space(r.ring.variables))
        full, quot = _quotient_pair(r.ring, starts, r.faults)
        _assert_graph_parity(full, quot, r.ring)
        assert len(full.states) == r.k * len(quot.states)

    def test_ablation_counterexample_survives_quotient(self):
        """K = n - 2 admits a fair non-stabilizing cycle (the builder
        refuses it, so rebuild without validation); the quotient must
        still find it — liveness violations are preserved, not just
        passes."""
        from repro.core import (
            Action,
            Program,
            ValueRotation,
            Variable,
            assign,
            check_leads_to,
        )
        from repro.programs.token_ring import has_token

        size, k = 5, 3
        variables = [Variable(f"x{i}", list(range(k))) for i in range(size)]
        tokens = {i: has_token(i, size) for i in range(size)}
        actions = [
            Action(
                "move0", tokens[0],
                assign(x0=lambda s, n=size, kk=k: (s[f"x{n - 1}"] + 1) % kk),
                reads={"x0", f"x{size - 1}"}, writes={"x0"},
            )
        ] + [
            Action(
                f"move{i}", tokens[i],
                assign(**{f"x{i}": lambda s, i=i: s[f"x{i - 1}"]}),
                reads={f"x{i}", f"x{i - 1}"}, writes={f"x{i}"},
            )
            for i in range(1, size)
        ]
        under_k = Program(
            variables, actions, name=f"ring(n={size},K={k})",
            symmetry=ValueRotation(
                tuple(f"x{i}" for i in range(size)), modulus=k
            ),
        )
        one = Predicate(
            lambda s, ts=tokens: sum(1 for t in ts.values() if t(s)) == 1,
            name="one token",
        )
        starts = list(state_space(variables))
        oracle = check_leads_to(
            TransitionSystem(under_k, starts), TRUE, one
        )
        quotient = check_leads_to(
            TransitionSystem(under_k, starts, symmetric=True), TRUE, one
        )
        assert not bool(oracle)
        assert not bool(quotient)


class TestLintNet:
    def test_dc106_catches_invalid_process_rotation(self, ring):
        """Dijkstra's ring is not process-rotation symmetric (process
        0's increment is distinguished); DC106 flags the bad claim."""
        from repro.analysis import lint_program

        broken = ring.ring.with_symmetry(
            RingRotation(tuple((f"x{i}",) for i in range(ring.size)))
        )
        report = lint_program(broken, invariant=ring.invariant,
                              faults=ring.faults)
        assert report.by_code("DC106")

    def test_dc106_catches_missing_action_orbits(self, tmr_model):
        """Valid blocks but undeclared action orbits: the actions are
        then claimed fixed, which DC106 refutes (and which would make
        quotient fairness unsound)."""
        from repro.analysis import lint_program

        m = tmr_model
        no_orbits = m.tmr.with_symmetry(
            ReplicaSymmetry((("x",), ("y",), ("z",)))
        )
        report = lint_program(no_orbits, invariant=m.invariant,
                              faults=m.faults)
        assert report.by_code("DC106")

    def test_declared_catalogue_symmetries_are_clean(self, tmr_model, byz, ring):
        from repro.analysis import build_probe, check_symmetry

        for program, faults in (
            (tmr_model.tmr, tmr_model.faults),
            (byz.masking, byz.faults),
            (byz.failsafe, byz.faults),
            (ring.ring, ring.faults),
        ):
            probe = build_probe(program.variables)
            assert not check_symmetry(program, probe, faults=faults)
