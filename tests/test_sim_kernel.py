"""Tests for the discrete-event kernel and channels."""

import random

import pytest

from repro.sim.channel import ChannelConfig
from repro.sim.kernel import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        assert sim.run(until=3.0) == 3.0
        assert not fired
        sim.run()
        assert fired

    def test_max_events(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run(max_events=5)
        assert len(count) == 5

    def test_cascading_schedules(self):
        sim = Simulator()
        results = []

        def outer():
            sim.schedule(1.0, lambda: results.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert results == [2.0]

    def test_pending_and_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 1


class TestChannelConfig:
    def test_defaults_deliver_once(self):
        cfg = ChannelConfig()
        assert cfg.delivery_delays(random.Random(0)) == [1.0]

    def test_loss(self):
        cfg = ChannelConfig(loss_probability=1.0)
        assert cfg.delivery_delays(random.Random(0)) == []

    def test_duplication(self):
        cfg = ChannelConfig(duplication_probability=1.0)
        assert len(cfg.delivery_delays(random.Random(0))) == 2

    def test_jitter_bounds(self):
        cfg = ChannelConfig(delay=1.0, jitter=0.5)
        rng = random.Random(0)
        for _ in range(100):
            (d,) = cfg.delivery_delays(rng)
            assert 1.0 <= d <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelConfig(delay=-1)
        with pytest.raises(ValueError):
            ChannelConfig(loss_probability=2.0)
