"""Unit tests for invariant computation and detection predicates."""

from repro.core.action import Action, assign
from repro.core.invariants import (
    is_detection_predicate,
    largest_invariant_for_safety,
    reachable_invariant,
    weakest_detection_predicate,
)
from repro.core.predicate import FALSE, Predicate, TRUE
from repro.core.program import Program
from repro.core.specification import Spec, StateInvariant, TransitionInvariant
from repro.core.state import State, Variable


def counter(limit=3):
    return Program(
        [Variable("x", list(range(limit + 1)))],
        [
            Action(
                "inc",
                Predicate(lambda s, lim=limit: s["x"] < lim, f"x<{limit}"),
                assign(x=lambda s: s["x"] + 1),
            )
        ],
        name="counter",
    )


SAFE_BELOW_3 = Spec(
    [StateInvariant(Predicate(lambda s: s["x"] < 3, "x<3"))], name="x<3"
)
MONOTONE = Spec(
    [TransitionInvariant(lambda s, t: t["x"] >= s["x"], "monotone")],
    name="monotone",
)


class TestReachableInvariant:
    def test_contains_reachable_only(self):
        inv = reachable_invariant(counter(3), [State(x=1)])
        assert inv(State(x=2)) and not inv(State(x=0))

    def test_closed_in_program(self):
        p = counter(3)
        inv = reachable_invariant(p, [State(x=0)])
        for state in p.states():
            if not inv(state):
                continue
            for _, nxt in p.successors(state):
                assert inv(nxt)


class TestLargestInvariant:
    def test_removes_states_leading_to_violation(self):
        inv = largest_invariant_for_safety(counter(3), SAFE_BELOW_3)
        # x=2 steps to x=3 which is bad; x=3 is bad itself
        assert not inv(State(x=2)) and not inv(State(x=3))
        # x=0, x=1 — wait: x=1 -> 2 -> out; closure removes them too
        assert not inv(State(x=1)) and not inv(State(x=0))

    def test_deadlockable_safe_region_kept(self):
        p = counter(2)  # never reaches 3
        inv = largest_invariant_for_safety(p, SAFE_BELOW_3)
        assert all(inv(State(x=v)) for v in (0, 1, 2))

    def test_transition_safety(self):
        p = Program(
            [Variable("x", [0, 1])],
            [Action("dec", Predicate(lambda s: s["x"] == 1), assign(x=0))],
            name="dec",
        )
        inv = largest_invariant_for_safety(p, MONOTONE)
        assert inv(State(x=0)) and not inv(State(x=1))


class TestWeakestDetectionPredicate:
    def test_basic(self):
        p = counter(3)
        states = list(p.states())
        wdp = weakest_detection_predicate(p.action("inc"), SAFE_BELOW_3, states)
        # executing inc at x=2 yields 3 (bad); at bad state x=3 it is
        # disabled but the state itself is bad
        assert wdp(State(x=0)) and wdp(State(x=1))
        assert not wdp(State(x=2)) and not wdp(State(x=3))

    def test_is_detection_predicate_confirms(self):
        p = counter(3)
        states = list(p.states())
        wdp = weakest_detection_predicate(p.action("inc"), SAFE_BELOW_3, states)
        assert is_detection_predicate(wdp, p.action("inc"), SAFE_BELOW_3, states)

    def test_weakestness(self):
        """Every detection predicate implies the weakest one (Theorem
        3.3 discussion)."""
        p = counter(3)
        states = list(p.states())
        action = p.action("inc")
        wdp = weakest_detection_predicate(action, SAFE_BELOW_3, states)
        stronger = Predicate(lambda s: s["x"] == 0, "x=0")
        assert is_detection_predicate(stronger, action, SAFE_BELOW_3, states)
        assert wdp.implied_everywhere_by(stronger, states)

    def test_strengthening_stays_detection_predicate(self):
        """If sf is a detection predicate and X ⇒ sf then X is one."""
        p = counter(3)
        states = list(p.states())
        action = p.action("inc")
        wdp = weakest_detection_predicate(action, SAFE_BELOW_3, states)
        strengthened = wdp & Predicate(lambda s: s["x"] != 1, "x≠1")
        assert is_detection_predicate(strengthened, action, SAFE_BELOW_3, states)

    def test_disjunction_closure(self):
        """sf1 ∨ sf2 is a detection predicate when both are."""
        p = counter(3)
        states = list(p.states())
        action = p.action("inc")
        sf1 = Predicate(lambda s: s["x"] == 0, "x=0")
        sf2 = Predicate(lambda s: s["x"] == 1, "x=1")
        assert is_detection_predicate(sf1 | sf2, action, SAFE_BELOW_3, states)

    def test_false_always_qualifies(self):
        p = counter(3)
        states = list(p.states())
        assert is_detection_predicate(FALSE, p.action("inc"), SAFE_BELOW_3, states)

    def test_true_fails_for_unsafe_action(self):
        p = counter(3)
        states = list(p.states())
        assert not is_detection_predicate(TRUE, p.action("inc"), SAFE_BELOW_3, states)
