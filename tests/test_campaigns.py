"""Tests for the campaign engine: schedules, classification, telemetry,
and crash containment."""

import io
import json
import random

import pytest

from repro.campaigns import (
    SCHEMA_VERSION,
    Campaign,
    CampaignLog,
    Scenario,
    ScenarioInstance,
    ScheduleSpec,
    TrialMetrics,
    campaign_verdict,
    classify_outcome,
    classify_trial,
    derive_seed,
    format_verdict,
    load_summary,
    percentile,
    random_schedule,
    read_events,
    summarize,
)
from repro.sim import Network, PredicateMonitor, SimProcess


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------

def ring_spec(**overrides):
    spec = ScheduleSpec(
        horizon=100.0,
        budget=6,
        crash_targets=(0, 1, 2),
        corruption_targets=(0, 1, 2),
        loss_channels=((0, 1), (1, 2), (2, 0)),
        corruptor=lambda rng, pid: {"has_token": False},
    )
    for key, value in overrides.items():
        spec = getattr(spec, f"with_{key}")(value)
    return spec


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        spec = ring_spec()
        first = random_schedule(spec, 12)
        second = random_schedule(spec, 12)
        assert first.describe() == second.describe()

    def test_different_seeds_differ(self):
        spec = ring_spec()
        assert random_schedule(spec, 1).describe() != \
            random_schedule(spec, 2).describe()

    def test_budget_counts_events_not_injectors(self):
        spec = ring_spec(budget=10)
        schedule = random_schedule(spec, 0)
        described = schedule.describe()
        crashes = sum(1 for f in described if f["kind"] == "crash")
        restarts = sum(1 for f in described if f["kind"] == "restart")
        other = len(described) - crashes - restarts
        assert crashes == restarts
        assert crashes + other == 10

    def test_onsets_inside_fault_window(self):
        spec = ring_spec(budget=40)
        for onset in random_schedule(spec, 5).onset_times():
            assert 0.05 * spec.horizon <= onset
        # only crash onsets are bounded by 0.85*h; restarts may trail

    def test_empty_spec_yields_empty_schedule(self):
        spec = ScheduleSpec(horizon=100.0, budget=5)
        assert spec.kinds() == ()
        assert len(random_schedule(spec, 0)) == 0

    def test_kind_filtering(self):
        spec = ScheduleSpec(horizon=50.0, budget=5, crash_targets=(7,))
        assert spec.kinds() == ("crash_restart",)
        kinds = {f["kind"] for f in random_schedule(spec, 3).describe()}
        assert kinds == {"crash", "restart"}

    def test_corruption_requires_corruptor(self):
        spec = ScheduleSpec(
            horizon=50.0, budget=5, corruption_targets=(1,)
        )
        assert spec.kinds() == ()  # targets without a corruptor: never drawn

    def test_sorted_by_onset(self):
        schedule = random_schedule(ring_spec(budget=20), 9)
        times = [f["time"] for f in schedule.describe()]
        assert times == sorted(times)

    def test_accepts_shared_rng(self):
        rng = random.Random(4)
        first = random_schedule(ring_spec(), rng)
        second = random_schedule(ring_spec(), rng)
        assert first.describe() != second.describe()  # the stream advanced


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

def monitor_with_samples(samples):
    monitor = PredicateMonitor(Network(seed=0), lambda s: True)
    monitor.samples = list(samples)
    return monitor


class TestClassifyOutcome:
    def test_lattice(self):
        assert classify_outcome(True, True) == "masking"
        assert classify_outcome(True, False) == "failsafe"
        assert classify_outcome(False, True) == "nonmasking"
        assert classify_outcome(False, False) == "intolerant"


class TestClassifyTrial:
    def test_masking_trial(self):
        safety = monitor_with_samples([(t, True) for t in range(10)])
        legitimacy = monitor_with_samples(
            [(0.0, True), (1.0, True), (2.0, False), (3.0, False),
             (4.0, True), (5.0, True)]
        )
        metrics = classify_trial(safety, legitimacy, fault_times=[1.5])
        assert metrics.outcome == "masking"
        assert metrics.safety_ok is True
        assert metrics.converged is True
        # perturbation first observed at t=2, caused by the fault at 1.5
        assert metrics.detection_latency == pytest.approx(0.5)
        # recovered at t=4, fault at 1.5
        assert metrics.convergence_time == pytest.approx(2.5)
        assert metrics.availability == pytest.approx(4 / 6)

    def test_nonmasking_trial(self):
        safety = monitor_with_samples(
            [(0.0, True), (1.0, False), (2.0, True)]
        )
        legitimacy = monitor_with_samples(
            [(0.0, True), (1.0, False), (2.0, True)]
        )
        metrics = classify_trial(safety, legitimacy, fault_times=[0.5])
        assert metrics.outcome == "nonmasking"
        assert metrics.safety_ok is False

    def test_failsafe_trial(self):
        safety = monitor_with_samples([(t, True) for t in range(5)])
        legitimacy = monitor_with_samples(
            [(0.0, True), (1.0, True), (2.0, False), (3.0, False),
             (4.0, False)]
        )
        metrics = classify_trial(safety, legitimacy, fault_times=[1.2])
        assert metrics.outcome == "failsafe"
        assert metrics.converged is False
        assert metrics.convergence_time is None

    def test_no_faults_no_detection_latency(self):
        safety = monitor_with_samples([(0.0, True)])
        legitimacy = monitor_with_samples([(0.0, True)])
        metrics = classify_trial(safety, legitimacy, fault_times=[])
        assert metrics.outcome == "masking"
        assert metrics.detection_latency is None
        assert metrics.convergence_time == 0.0

    def test_unobserved_faults_have_no_latency(self):
        safety = monitor_with_samples([(t, True) for t in range(5)])
        legitimacy = monitor_with_samples([(t, True) for t in range(5)])
        metrics = classify_trial(safety, legitimacy, fault_times=[2.0])
        assert metrics.detection_latency is None
        assert metrics.outcome == "masking"
        assert metrics.convergence_time == 0.0  # never perturbed


class TestCampaignVerdict:
    def test_all_masking(self):
        verdict = campaign_verdict(["masking"] * 3)
        assert verdict["verdict"] == "masking"
        assert verdict["completed"] == 3

    def test_failsafe_mixture(self):
        assert campaign_verdict(
            ["masking", "failsafe"])["verdict"] == "failsafe"

    def test_nonmasking_mixture(self):
        assert campaign_verdict(
            ["masking", "nonmasking"])["verdict"] == "nonmasking"

    def test_conflicting_mixture_is_none(self):
        assert campaign_verdict(
            ["failsafe", "nonmasking"])["verdict"] == "none"

    def test_intolerant_forces_none(self):
        assert campaign_verdict(
            ["masking", "intolerant"])["verdict"] == "none"

    def test_errors_excluded_from_claim_but_counted(self):
        verdict = campaign_verdict(["masking", "error", "timeout"])
        assert verdict["verdict"] == "masking"
        assert verdict["completed"] == 1
        assert verdict["counts"]["error"] == 1
        assert verdict["counts"]["timeout"] == 1

    def test_all_errors(self):
        assert campaign_verdict(["error", "error"])["verdict"] == "none"


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) is None

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 90) == 4.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_singleton(self):
        assert percentile([7.0], 99) == 7.0


class TestSummarizeAndFormat:
    def metrics(self):
        return [
            TrialMetrics(outcome="masking", safety_ok=True, converged=True,
                         detection_latency=1.0, convergence_time=3.0,
                         availability=0.9, faults_injected=4),
            TrialMetrics(outcome="nonmasking", safety_ok=False,
                         converged=True, detection_latency=2.0,
                         convergence_time=5.0, availability=0.7,
                         faults_injected=6),
            TrialMetrics(outcome="error"),
        ]

    def test_summarize(self):
        metrics = self.metrics()
        verdict = campaign_verdict([m.outcome for m in metrics])
        summary = summarize("demo", verdict, metrics)
        assert summary["scenario"] == "demo"
        assert summary["verdict"] == "nonmasking"
        assert summary["faults_injected"] == 10
        assert summary["detection_latency"]["n"] == 2
        assert summary["detection_latency"]["p50"] == 1.0
        assert summary["convergence_time"]["p99"] == 5.0
        # the errored trial contributes no availability sample
        assert summary["availability_mean"] == pytest.approx(0.8)

    def test_format_verdict_counts_masking_toward_weaker_claims(self):
        metrics = self.metrics()
        verdict = campaign_verdict([m.outcome for m in metrics])
        text = format_verdict(summarize("demo", verdict, metrics))
        assert "nonmasking-tolerant in 2/2 trials" in text
        assert "error=1" in text

    def test_campaign_log_writes_jsonl(self):
        buffer = io.StringIO()
        log = CampaignLog(buffer)
        log.emit("campaign_start", seed=3)
        log.emit("trial_end", trial=0, outcome="masking")
        log.close()
        lines = [json.loads(line) for line in
                 buffer.getvalue().strip().splitlines()]
        assert lines[0] == {
            "event": "campaign_start",
            "schema_version": SCHEMA_VERSION,
            "seed": 3,
        }
        assert lines[1]["outcome"] == "masking"
        assert log.events[0]["event"] == "campaign_start"

    def test_every_record_carries_schema_version(self):
        buffer = io.StringIO()
        log = CampaignLog(buffer)
        log.emit("campaign_start", seed=0)
        log.emit("transition", monitor="safety", time=1.0, value=False)
        log.emit("campaign_end", summary={})
        for record in log.events:
            assert record["schema_version"] == SCHEMA_VERSION

    def test_read_events_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            log = CampaignLog(stream)
            log.emit("campaign_start", seed=7)
            log.emit("fault", time=2.0, kind="crash", process=1)
            log.close()
        records = list(read_events(path))
        assert [r["event"] for r in records] == ["campaign_start", "fault"]
        assert all(r["schema_version"] == SCHEMA_VERSION for r in records)
        assert records[1]["kind"] == "crash"

    def test_read_events_parses_old_unversioned_logs(self, tmp_path):
        # logs written before the schema stamp: no schema_version key
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"event": "campaign_start", "seed": 3}\n'
            "\n"  # blank lines are tolerated
            '{"event": "transition", "monitor": "safety", '
            '"time": 1.5, "value": false}\n'
        )
        records = list(read_events(path))
        assert [r["event"] for r in records] == [
            "campaign_start", "transition",
        ]
        # unversioned records are stamped as vintage 0, not current
        assert all(r["schema_version"] == 0 for r in records)

    def test_load_summary(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            log = CampaignLog(stream)
            log.emit("campaign_start", seed=0)
            log.emit("campaign_end", summary={"verdict": "masking"})
            log.close()
        assert load_summary(path) == {"verdict": "masking"}

    def test_load_summary_missing(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text('{"event": "campaign_start", "seed": 0}\n')
        assert load_summary(path) is None


# ---------------------------------------------------------------------------
# the runner: containment, timeout, determinism
# ---------------------------------------------------------------------------

class Oscillator(SimProcess):
    """Flips ``ok`` every 2 time units, forever."""

    def __init__(self, pid):
        super().__init__(pid)
        self.ok = True

    def on_start(self):
        self.set_timer("flip", 2.0)

    def on_timer(self, name):
        self.ok = not self.ok
        self.set_timer("flip", 2.0)


def tiny_scenario(build=None, horizon=10.0, budget=0):
    def default_build(seed):
        network = Network(seed=seed)
        network.add_process(Oscillator("o"))
        return ScenarioInstance(
            network=network,
            safety=lambda s: True,
            legitimacy=lambda s: s["o"]["ok"],
        )

    return Scenario(
        name="tiny",
        description="test scenario",
        build=build or default_build,
        spec=ScheduleSpec(horizon=horizon, budget=budget),
        horizon=horizon,
        sample_period=1.0,
    )


class TestCampaignRunner:
    def test_runs_all_trials(self):
        result = Campaign(tiny_scenario(), trials=4, seed=0).run()
        assert len(result.trials) == 4
        assert result.summary["trials"] == 4
        assert [r.trial for r in result.trials] == [0, 1, 2, 3]

    def test_trial_seeds_are_distinct(self):
        result = Campaign(tiny_scenario(), trials=5, seed=0).run()
        seeds = {r.network_seed for r in result.trials} | {
            r.schedule_seed for r in result.trials
        }
        assert len(seeds) == 10

    def test_failing_trial_recorded_not_fatal(self):
        calls = {"n": 0}

        def flaky_build(seed):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("boom")
            return tiny_scenario().build(seed)

        result = Campaign(
            tiny_scenario(build=flaky_build), trials=3, seed=0
        ).run()
        outcomes = result.outcomes()
        assert outcomes[1] == "error"
        assert outcomes[0] != "error" and outcomes[2] != "error"
        assert "RuntimeError: boom" in result.trials[1].error
        assert result.summary["counts"]["error"] == 1

    def test_timeout_recorded_not_fatal(self):
        class Spinner(SimProcess):
            def on_start(self):
                self.set_timer("spin", 1e-9)

            def on_timer(self, name):
                self.set_timer("spin", 1e-9)

        def spinning_build(seed):
            network = Network(seed=seed)
            network.add_process(Spinner("s"))
            return ScenarioInstance(
                network=network,
                safety=lambda s: True,
                legitimacy=lambda s: True,
            )

        result = Campaign(
            tiny_scenario(build=spinning_build, horizon=1e9),
            trials=2, seed=0, trial_timeout=0.05,
        ).run()
        assert result.outcomes() == ["timeout", "timeout"]

    def test_jsonl_deterministic_modulo_wall_clock(self):
        def run_once():
            buffer = io.StringIO()
            Campaign(tiny_scenario(), trials=3, seed=11,
                     stream=buffer).run()
            events = [json.loads(line) for line in
                      buffer.getvalue().strip().splitlines()]
            return [
                {k: v for k, v in e.items() if not k.startswith("wall")}
                for e in events
            ]

        assert run_once() == run_once()

    def test_transitions_streamed_to_log(self):
        buffer = io.StringIO()
        campaign = Campaign(tiny_scenario(), trials=1, seed=0,
                            stream=buffer)
        campaign.run()
        kinds = [e["event"] for e in campaign.log.events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        transitions = [e for e in campaign.log.events
                       if e["event"] == "transition"]
        # the oscillator flips legitimacy every 2 time units
        assert len(transitions) >= 4
        assert {t["monitor"] for t in transitions} == {"safety", "legitimacy"}

    def test_budget_and_horizon_overrides(self):
        campaign = Campaign(tiny_scenario(), trials=1, seed=0,
                            budget=9, horizon=5.0)
        assert campaign.spec.budget == 9
        assert campaign.spec.horizon == 5.0
        result = campaign.run()
        assert result.trials[0].sim_time == pytest.approx(5.0)

    def test_derive_seed_is_pure(self):
        assert derive_seed(0, 1, 0) == derive_seed(0, 1, 0)
        assert derive_seed(0, 1, 0) != derive_seed(0, 1, 1)
        assert derive_seed(0, 1, 1) != derive_seed(0, 2, 0)
