"""Unit tests for states, variables, and state spaces."""

import pickle

import pytest

from repro.core.state import BOTTOM, Bottom, State, Variable, state_space


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_distinct_from_none_and_zero(self):
        assert BOTTOM is not None
        assert BOTTOM != 0
        assert BOTTOM != False  # noqa: E712 — identity with falsy values matters

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM


class TestVariable:
    def test_domain_preserved_in_order(self):
        v = Variable("x", [2, 0, 1])
        assert v.domain == (2, 0, 1)

    def test_duplicates_removed(self):
        v = Variable("x", [1, 1, 2, 2])
        assert v.domain == (1, 2)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Variable("x", [])

    def test_contains(self):
        v = Variable("x", [0, 1])
        assert 0 in v
        assert 7 not in v

    def test_equality_and_hash(self):
        assert Variable("x", [0, 1]) == Variable("x", [0, 1])
        assert Variable("x", [0, 1]) != Variable("x", [0, 2])
        assert hash(Variable("x", [0, 1])) == hash(Variable("x", [0, 1]))


class TestState:
    def test_mapping_access(self):
        s = State(x=1, y=2)
        assert s["x"] == 1
        assert len(s) == 2
        assert set(s) == {"x", "y"}
        assert "x" in s and "z" not in s

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            State(x=1)["y"]

    def test_assign_returns_new_state(self):
        s = State(x=1, y=2)
        t = s.assign(x=5)
        assert t["x"] == 5 and t["y"] == 2
        assert s["x"] == 1, "original must be unchanged"

    def test_assign_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            State(x=1).assign(z=0)

    def test_extend_adds_variables(self):
        s = State(x=1).extend(y=2)
        assert s["y"] == 2

    def test_extend_existing_variable_raises(self):
        with pytest.raises(KeyError):
            State(x=1).extend(x=2)

    def test_equality_order_independent(self):
        assert State(x=1, y=2) == State(y=2, x=1)

    def test_hash_consistent(self):
        assert hash(State(x=1, y=2)) == hash(State(y=2, x=1))
        assert len({State(x=1), State(x=1), State(x=2)}) == 2

    def test_equality_with_plain_mapping(self):
        assert State(x=1) == {"x": 1}

    def test_projection(self):
        s = State(x=1, y=2, z=3)
        assert s.project(["x", "z"]) == State(x=1, z=3)

    def test_projection_on_missing_names_is_partial(self):
        assert State(x=1).project(["x", "ghost"]) == State(x=1)

    def test_constructor_from_mapping_and_kwargs(self):
        s = State({"x": 1}, y=2)
        assert s == State(x=1, y=2)

    def test_kwargs_override_mapping(self):
        assert State({"x": 1}, x=9)["x"] == 9

    def test_repr_is_sorted(self):
        assert repr(State(b=1, a=0)) == "State(a=0, b=1)"

    def test_bottom_values(self):
        s = State(x=BOTTOM)
        assert s["x"] is BOTTOM


class TestStateSpace:
    def test_full_product(self):
        variables = [Variable("x", [0, 1]), Variable("y", "ab")]
        states = list(state_space(variables))
        assert len(states) == 4
        assert State(x=0, y="a") in states

    def test_deterministic_order(self):
        variables = [Variable("x", [0, 1])]
        assert list(state_space(variables)) == list(state_space(variables))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            list(state_space([Variable("x", [0]), Variable("x", [1])]))

    def test_single_variable(self):
        states = list(state_space([Variable("x", [0, 1, 2])]))
        assert [s["x"] for s in states] == [0, 1, 2]
