"""The ready-made campaign scenarios: every one builds, runs, and
produces classifiable trials; the flagship determinism claim holds for
the CLI-visible token-ring campaign."""

import io
import json

import pytest

from repro.campaigns import SCENARIOS, Campaign, get_scenario
from repro.campaigns.scenarios import (
    ColdRestartRingProcess,
    MemoryClient,
    MemoryServer,
)
from repro.sim import Network

TOLERANCE_OUTCOMES = ("masking", "failsafe", "nonmasking", "intolerant")


class TestRegistry:
    def test_expected_scenarios_present(self):
        assert set(SCENARIOS) == {
            "token_ring", "tmr", "byzantine", "memory_access"
        }

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("nonsense")

    def test_every_scenario_builds_fresh_instances(self):
        for scenario in SCENARIOS.values():
            first = scenario.build(1)
            second = scenario.build(1)
            assert first.network is not second.network
            assert first.network.processes.keys() == \
                second.network.processes.keys()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestScenarioCampaigns:
    def test_short_campaign_completes(self, name):
        result = Campaign(get_scenario(name), trials=3, seed=0).run()
        assert len(result.trials) == 3
        for record in result.trials:
            assert record.outcome in TOLERANCE_OUTCOMES, (
                f"{name} trial {record.trial} "
                f"failed internally: {record.error}"
            )
        assert result.summary["faults_injected"] > 0

    def test_predicates_see_real_state(self, name):
        instance = get_scenario(name).build(3)
        snapshot = instance.network.global_snapshot()
        # predicates evaluate on the initial snapshot without raising
        assert instance.safety(snapshot) in (True, False)
        assert instance.legitimacy(snapshot) in (True, False)


class TestTokenRingScenario:
    def test_cold_restart_loses_token(self):
        network = Network(seed=0)
        process = network.add_process(
            ColdRestartRingProcess(1, 4, regeneration_timeout=None)
        )
        process.has_token = True
        network.crash(1)
        network.restart(1)
        assert process.has_token is False

    def test_regeneration_keeps_ring_at_least_failsafe(self):
        result = Campaign(
            get_scenario("token_ring"), trials=10, seed=0
        ).run()
        assert result.verdict in ("masking", "failsafe", "nonmasking")
        assert result.summary["counts"]["intolerant"] == 0


class TestTmrScenario:
    def test_single_fault_budget_is_masked(self):
        result = Campaign(
            get_scenario("tmr"), trials=10, seed=3, budget=1
        ).run()
        assert result.verdict == "masking"

    def test_voter_repairs_corrupted_replica(self):
        scenario = get_scenario("tmr")
        instance = scenario.build(0)
        network = instance.network
        network.run(until=5.0)
        network.corrupt("r1", {"value": 0})
        assert not instance.legitimacy(network.global_snapshot())
        network.run(until=12.0)
        snapshot = network.global_snapshot()
        assert snapshot["r1"]["value"] == 1, "voter wrote the majority back"
        assert instance.legitimacy(snapshot)


class TestMemoryAccessScenario:
    def test_fault_free_run_completes(self):
        instance = get_scenario("memory_access").build(5)
        instance.network.run(until=60.0)
        snapshot = instance.network.global_snapshot()
        assert snapshot["c"]["done"] is True
        assert snapshot["c"]["bad_reads"] == 0

    def test_client_retries_through_server_crash(self):
        instance = get_scenario("memory_access").build(5)
        network = instance.network
        network.simulator.schedule(2.0, lambda: network.crash("s"))
        network.simulator.schedule(8.0, lambda: network.restart("s"))
        network.run(until=60.0)
        snapshot = network.global_snapshot()
        assert snapshot["c"]["done"] is True
        assert snapshot["c"]["retries"] > 0
        assert snapshot["c"]["bad_reads"] == 0

    def test_safety_never_violated_by_crashes(self):
        result = Campaign(
            get_scenario("memory_access"), trials=8, seed=2
        ).run()
        for record in result.trials:
            assert record.metrics.safety_ok is True
        assert result.verdict in ("masking", "failsafe")


class TestFlagshipDeterminism:
    """The acceptance-criteria run: same seed, identical JSONL modulo
    wall-clock fields."""

    def run_once(self, trials=5):
        buffer = io.StringIO()
        Campaign(
            get_scenario("token_ring"), trials=trials, seed=0,
            stream=buffer,
        ).run()
        return [
            {k: v for k, v in json.loads(line).items()
             if not k.startswith("wall")}
            for line in buffer.getvalue().strip().splitlines()
        ]

    def test_token_ring_campaign_is_deterministic(self):
        assert self.run_once() == self.run_once()

    def test_log_contains_all_event_kinds(self):
        kinds = {event["event"] for event in self.run_once(trials=3)}
        assert kinds == {
            "campaign_start", "trial_start", "fault", "transition",
            "trial_end", "campaign_end",
        }
