"""THM — the paper's main results, validated mechanically.

One bench per theorem: premises are verified, the proof's witness
predicates are constructed, and the conclusions are model-checked — the
executable counterpart of the paper's PVS programme (Section 7)."""

from repro import theory
from repro.core import TRUE


def bench_theorem_3_4(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_3_4(
            memory.pf, memory.p, memory.S_pf, memory.spec.safety_part()
        )
    )
    assert result
    report("THM", "Theorem 3.4 (safety refinement contains detectors): PASS")


def bench_theorem_3_6(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_3_6(
            memory.pf, memory.p, memory.spec,
            invariant_base=memory.S_p, invariant_refined=memory.S_pf,
            span=memory.T_pf, faults=memory.fault_before_witness,
        )
    )
    assert result
    report("THM", "Theorem 3.6 (fail-safe contains fail-safe detectors): PASS")


def bench_theorem_4_1(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_4_1(
            memory.pn, memory.p, memory.spec, memory.S_pn, memory.T_pn
        )
    )
    assert result
    report("THM", "Theorem 4.1 (eventual refinement contains correctors): PASS")


def bench_lemma_4_2(benchmark, memory, report):
    result = benchmark(
        lambda: theory.lemma_4_2(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm, span=memory.T_pm,
        )
    )
    assert result
    report("THM", "Lemma 4.2 (nonmasking corrector, restored subset): PASS")


def bench_theorem_4_3(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_4_3(
            memory.pn, memory.p, memory.spec,
            invariant=memory.S_p, restored=memory.S_pn,
            span=memory.T_pn, faults=memory.fault_anytime,
        )
    )
    assert result
    report("THM", "Theorem 4.3 (nonmasking contains nonmasking correctors): PASS")


def bench_theorem_5_2(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_5_2(
            memory.pm, memory.spec, memory.S_pm, memory.T_pm
        )
    )
    assert result
    report("THM", "Theorem 5.2 (fail-safe + nonmasking = masking): PASS")


def bench_theorem_5_3(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_5_3(
            memory.pm, memory.pn, memory.spec, memory.S_pn, memory.T_pm
        )
    )
    assert result
    report("THM", "Theorem 5.3 (transformations contain both components): PASS")


def bench_lemma_5_4(benchmark, memory, report):
    result = benchmark(
        lambda: theory.lemma_5_4(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm, span=memory.T_pm,
        )
    )
    assert result
    report("THM", "Lemma 5.4 (projection-closure corrector): PASS")


def bench_theorem_5_5(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_5_5(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm,
            span=memory.T_pm, faults=memory.fault_before_witness,
        )
    )
    assert result
    report("THM", "Theorem 5.5 (masking contains masking detectors+correctors): PASS")
