"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark corresponds to one experiment id in DESIGN.md (FIG1-3,
SEC61, SEC62, THM, SYNTH, APP-TR, APP-BYZ, EXTANT, SIEFAST, FD).  Each
bench function *asserts* the qualitative claim (who wins / what holds)
and *times* the operation that establishes it; the ``report`` fixture
prints the paper-style rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.programs import (
    byzantine,
    memory_access,
    mutual_exclusion,
    token_ring,
    tmr,
)


@pytest.fixture(scope="session")
def memory():
    return memory_access.build()


@pytest.fixture(scope="session")
def tmr_model():
    return tmr.build()


@pytest.fixture(scope="session")
def byz():
    return byzantine.build()


@pytest.fixture(scope="session")
def mutex():
    return mutual_exclusion.build(3)


@pytest.fixture(scope="session")
def report(tmp_path_factory):
    """Append experiment rows to the experiment log (pytest captures
    stdout/stderr, so rows go to a file: ``REPRO_EXPERIMENT_LOG`` or
    ``experiment_rows.log`` in the working directory).  The log is
    truncated once per benchmark session; EXPERIMENTS.md is written from
    it."""
    import os

    path = os.environ.get("REPRO_EXPERIMENT_LOG", "experiment_rows.log")
    with open(path, "w", encoding="utf-8"):
        pass  # truncate at session start

    def emit(experiment: str, row: str) -> None:
        with open(path, "a", encoding="utf-8") as log:
            log.write(f"[{experiment}] {row}\n")

    return emit
