"""LINT — symbolic analyzer and certificate-store replay timings.

Times the three phases the ``repro lint`` pre-flight goes through in
CI: a cold symbolic pass over the full bundled catalogue (frames,
guard satisfiability, and translation validation proven from the Plan
IR), a warm pass answered from the content-addressed certificate
store, and a single-action symbolic analysis on a state space far past
any probe budget (4^30 states) — the case that motivates the analyzer.

Standalone diagnostics: this suite is *not* part of the
``BENCH_core.json`` regression gate (lint wall time tracks catalogue
size, not the perf core), so it asserts qualitative claims only — the
catalogue stays clean, every planned action is proven, and the warm
run is served entirely from the store.
"""

from repro.analysis import LintConfig, all_lint_targets, lint
from repro.analysis.symbolic import analyze_action, clear_symbolic_caches
from repro.core import Action, Plan, Predicate, Variable, assign
from repro.core.state import Schema
from repro.store import backend as store_backend


def _lint_catalogue():
    return [lint(target) for target in all_lint_targets()]


def bench_lint_catalogue_cold(benchmark, report):
    def run():
        clear_symbolic_caches()
        store_backend.set_active_store(None)
        return _lint_catalogue()

    reports = benchmark(run)
    assert not any(r.errors() for r in reports)
    proven = sum(len(r.proofs) for r in reports)
    assert proven > 0
    report(
        "LINT",
        f"cold symbolic lint of {len(reports)} targets: "
        f"{proven} proven facts",
    )


def bench_lint_catalogue_warm_store(benchmark, report):
    store_backend.set_active_store(":memory:")
    try:
        clear_symbolic_caches()
        cold = _lint_catalogue()

        def run():
            clear_symbolic_caches()  # memo off: measure the store path
            store_backend.reset_stats()
            return _lint_catalogue()

        warm = benchmark(run)
        stats = store_backend.stats()
        assert stats.get("misses", 0) == 0, stats
        assert stats.get("lint_report_hits", 0) == len(warm)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
        report(
            "LINT",
            f"warm replay of {len(warm)} targets: "
            f"{stats.get('hits', 0)} store hits, 0 misses",
        )
    finally:
        store_backend.set_active_store(None)
        store_backend.reset_stats()


def bench_symbolic_analysis_huge_space(benchmark, report):
    variables = [Variable(f"v{i}", [0, 1, 2, 3]) for i in range(30)]
    schema = Schema.of(tuple(v.name for v in variables))
    action = Action(
        "wide",
        Predicate(lambda s: s["v0"] == s["v1"], name="g"),
        assign(v2=1),
        reads={"v0", "v1"}, writes={"v2"},
        plan=Plan(("eq_var", "v0", "v1"), [("set_const", "v2", 1)]),
    )
    config = LintConfig()

    def run():
        clear_symbolic_caches()
        return analyze_action(
            action, variables, schema, target="bench", config=config
        )

    analysis = benchmark(run)
    assert analysis.translation == "decomposed"
    assert analysis.reads == frozenset({"v0", "v1"})
    assert analysis.writes == frozenset({"v2"})
    assert not analysis.diagnostics
    report(
        "LINT",
        f"symbolic frames+translation on 4^30 states: "
        f"{len(analysis.proofs)} proofs, no probe",
    )
