"""FIG3 — Figure 3 / Section 5.1: masking memory access.

Detector + corrector together: ``pm`` masks the page fault entirely —
certified directly and via Theorem 5.5 (which also extracts a masking
tolerant detector per action of pn and a corrector of its invariant).
"""

from repro import theory
from repro.core import is_masking_tolerant, semantic_tolerance_check


def bench_fig3_pm_masking_certificate(benchmark, memory, report):
    result = benchmark(
        lambda: is_masking_tolerant(
            memory.pm, memory.fault_before_witness, memory.spec,
            memory.S_pm, memory.T_pm,
        )
    )
    assert result
    report("FIG3", "pm is masking page-fault-tolerant to SPEC_mem: PASS")


def bench_fig3_theorem_5_5_extraction(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_5_5(
            memory.pm, memory.pn, memory.spec,
            invariant=memory.S_pn, restored=memory.S_pm,
            span=memory.T_pm, faults=memory.fault_before_witness,
        )
    )
    assert result
    report("FIG3", "Theorem 5.5 on (pm, pn): masking detectors + corrector "
                   "extracted and verified")


def bench_fig3_semantic_ground_truth(benchmark, memory, report):
    """Brute-force enumeration agrees with the certificate."""
    result = benchmark(
        lambda: semantic_tolerance_check(
            "masking", memory.pm, memory.fault_before_witness, memory.spec,
            memory.T_pm, max_length=8, max_faults=1,
        )
    )
    assert result
    report("FIG3", "bounded enumeration (len≤8, ≤1 fault) confirms masking")
