"""APP-TR — the token-ring case study (Section 7 / Dijkstra [9]).

Self-stabilization as nonmasking tolerance: verification cost and
stabilization time (exact demonic worst case + random-schedule average)
as the ring grows."""

import random

import pytest

from repro.core import TRUE, is_corrector, is_nonmasking_tolerant
from repro.programs import token_ring
from repro.sim import RandomScheduler, convergence_steps, \
    worst_case_convergence_steps


@pytest.mark.parametrize("size", [3, 4, 5])
def bench_ring_nonmasking_verification(benchmark, report, size):
    model = token_ring.build(size)
    result = benchmark(
        lambda: is_nonmasking_tolerant(
            model.ring, model.faults, model.spec, model.invariant, TRUE
        )
    )
    assert result
    report("APP-TR", f"n={size}: nonmasking tolerance verified over "
                     f"{model.ring.state_count()} states")


@pytest.mark.parametrize("size", [3, 4, 5])
def bench_ring_corrector_verification(benchmark, report, size):
    model = token_ring.build(size)
    result = benchmark(
        lambda: is_corrector(model.ring, model.invariant, model.invariant, TRUE)
    )
    assert result
    report("APP-TR", f"n={size}: the ring is a corrector of its invariant")


@pytest.mark.parametrize("size", [3, 4, 5, 6])
def bench_ring_worst_case_stabilization(benchmark, report, size):
    model = token_ring.build(size)
    bound = benchmark(
        lambda: worst_case_convergence_steps(
            model.ring, model.ring.states(), model.invariant
        )
    )
    assert 0 < bound <= 3 * size * size
    report("APP-TR", f"n={size}: worst-case stabilization = {bound} moves "
                     f"(O(n²) shape)")


@pytest.mark.parametrize("size", [3, 4, 5, 6])
def bench_ring_average_stabilization(benchmark, report, size):
    model = token_ring.build(size)
    rng = random.Random(size)
    states = list(model.ring.states())
    samples = [rng.choice(states) for _ in range(30)]

    def average():
        total = 0
        for index, start in enumerate(samples):
            steps = convergence_steps(
                model.ring, start, model.invariant, RandomScheduler(index)
            )
            assert steps is not None
            total += steps
        return total / len(samples)

    mean = benchmark(average)
    report("APP-TR", f"n={size}: mean random-schedule stabilization = "
                     f"{mean:.1f} moves")
