"""APP-MISC — the remaining application catalogue (paper §1's list).

Verification cost of each application's headline certificate: mutual
exclusion (masking to token loss), leader election (nonmasking,
self-stabilizing), termination detection (a pure detector), distributed
reset (a distributed corrector), and the hierarchical component
constructions."""

from repro.components.hierarchy import (
    parallel_detector,
    sequential_detector,
    wave_corrector,
)
from repro.core import (
    Action,
    Predicate,
    TRUE,
    Variable,
    assign,
    is_detector,
    is_masking_tolerant,
    is_nonmasking_tolerant,
)
from repro.programs import (
    distributed_reset,
    leader_election,
    termination_detection,
)


def bench_app_mutex_masking(benchmark, mutex, report):
    result = benchmark(
        lambda: is_masking_tolerant(
            mutex.tolerant, mutex.faults, mutex.spec,
            mutex.invariant, mutex.span,
        )
    )
    assert result
    report("APP-MISC", "mutual exclusion: masking to token loss "
                       f"({mutex.tolerant.state_count()} states)")


def bench_app_leader_election(benchmark, report):
    model = leader_election.build((3, 1, 2))
    result = benchmark(
        lambda: is_nonmasking_tolerant(
            model.program, model.faults, model.spec, model.invariant, TRUE
        )
    )
    assert result
    report("APP-MISC", "leader election: nonmasking (self-stabilizing) "
                       f"({model.program.state_count()} states)")


def bench_app_termination_detection(benchmark, report):
    model = termination_detection.build(3)
    result = benchmark(
        lambda: is_detector(
            model.detector, model.done, model.terminated, model.from_
        )
    )
    assert result
    report("APP-MISC", "termination detection: 'done detects terminated' "
                       f"({model.detector.state_count()} states)")


def bench_app_distributed_reset(benchmark, report):
    model = distributed_reset.build(3, 2)
    result = benchmark(
        lambda: is_nonmasking_tolerant(
            model.program, model.faults, model.spec,
            model.invariant, model.span,
        )
    )
    assert result
    report("APP-MISC", "distributed reset: nonmasking wave corrector "
                       f"({model.program.state_count()} states)")


def bench_app_tree_maintenance(benchmark, report):
    from repro.programs import tree_maintenance

    model = tree_maintenance.build()
    result = benchmark(
        lambda: is_nonmasking_tolerant(
            model.program, model.faults, model.spec, model.invariant, TRUE
        )
    )
    assert result
    report("APP-MISC", "tree maintenance: self-stabilizing BFS tree "
                       f"({model.program.state_count()} states)")


def bench_app_barrier(benchmark, report):
    from repro.programs import barrier

    model = barrier.build(3)
    result = benchmark(
        lambda: is_masking_tolerant(
            model.tolerant, model.faults, model.spec,
            model.invariant, model.span,
        )
    )
    assert result
    report("APP-MISC", "barrier: masking to arrival-flag loss "
                       f"({model.tolerant.state_count()} states)")


def _bits(count):
    return [Variable(f"b{i}", [False, True]) for i in range(count)]


def _conjuncts(count):
    return [
        Predicate(lambda s, i=i: s[f"b{i}"], name=f"b{i}") for i in range(count)
    ]


def bench_app_hierarchical_detector(benchmark, report):
    instance = sequential_detector(_bits(4), _conjuncts(4))
    assert benchmark(instance.verify)
    report("APP-MISC", "hierarchical (scanning) detector over 4 conjuncts: PASS")


def bench_app_distributed_detector(benchmark, report):
    instance = parallel_detector(_bits(4), _conjuncts(4))
    assert benchmark(instance.verify)
    report("APP-MISC", "distributed (per-conjunct) detector over 4 conjuncts: PASS")


def bench_app_wave_corrector(benchmark, report):
    repairs = [
        Action(f"repair{i}", TRUE, assign(**{f"b{i}": True})) for i in range(4)
    ]
    instance = wave_corrector(_bits(4), _conjuncts(4), repairs)
    assert benchmark(instance.verify)
    report("APP-MISC", "hierarchical wave corrector over 4 stages: PASS")
