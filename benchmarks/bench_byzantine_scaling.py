"""APP-BYZ — the general Byzantine case (n = 3f + 1, Section 6.2 / [11]).

The paper model-checks n = 4, f = 1 (SEC62) and defers f > 1.  Here the
OM(m) substrate reproduces the general claim:

- agreement and validity hold for (n, f) ∈ {(4,1), (7,2), (10,3)}
  against adversarial strategies;
- the 3f + 1 threshold is sharp: at n = 3f validity/agreement break;
- message complexity grows as O(n^(f+1)) — the classical exponential
  blow-up the paper's efficiency discussion alludes to."""

import pytest

from repro.programs.oral_messages import (
    check_agreement,
    check_validity,
    constant_lie_strategy,
    random_strategy,
    run_oral_messages,
    split_strategy,
)

STRATEGIES = [
    ("constant0", constant_lie_strategy(0)),
    ("split", split_strategy()),
    ("random", random_strategy(13)),
]


@pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
def bench_om_agreement_at_threshold(benchmark, report, n, f):
    byzantine_sets = [tuple(range(f)), tuple(range(1, f + 1)), (0,) + tuple(
        range(2, f + 1)
    )]

    def campaign():
        runs = 0
        for byzantine in byzantine_sets:
            for _, strategy in STRATEGIES:
                for value in (0, 1):
                    run = run_oral_messages(
                        n, f, general_value=value,
                        byzantine=byzantine, strategy=strategy,
                    )
                    assert check_agreement(run), (n, f, byzantine)
                    assert check_validity(run), (n, f, byzantine)
                    runs += 1
        return runs

    runs = benchmark(campaign)
    report("APP-BYZ", f"n={n}, f={f}: agreement+validity over {runs} "
                      f"adversarial runs: PASS")


@pytest.mark.parametrize("f", [1, 2])
def bench_om_threshold_is_sharp(benchmark, report, f):
    """At n = 3f the algorithm must fail for some strategy."""
    n = 3 * f

    def find_violation():
        import itertools

        for byzantine in itertools.combinations(range(n), f):
            for _, strategy in STRATEGIES:
                for value in (0, 1):
                    run = run_oral_messages(
                        n, f, general_value=value,
                        byzantine=byzantine, strategy=strategy,
                    )
                    if not (check_agreement(run) and check_validity(run)):
                        return True
        return False

    assert benchmark(find_violation)
    report("APP-BYZ", f"n={n} (= 3f): correctness breaks — the 3f+1 bound "
                      f"is sharp")


@pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
def bench_om_message_complexity(benchmark, report, n, f):
    run = benchmark(
        lambda: run_oral_messages(
            n, f, byzantine=tuple(range(1, f + 1)),
            strategy=split_strategy(),
        )
    )
    report("APP-BYZ", f"n={n}, f={f}: {run.rounds} rounds, "
                      f"{run.messages_sent} messages (O(n^(f+1)) shape)")
