"""ABLATE — design-constraint ablations.

Each load-bearing design constraint in the program catalogue is removed
and the model checker times the discovery of the counterexample that
justifies it (see tests/test_ablations.py for the full battery)."""

import pytest

from repro.core import (
    Action,
    Predicate,
    Program,
    TRUE,
    TransitionSystem,
    Variable,
    assign,
    check_leads_to,
)
from repro.programs.token_ring import has_token


def raw_ring(size: int, k: int) -> Program:
    """The ring without the builder's K validation."""
    variables = [Variable(f"x{i}", list(range(k))) for i in range(size)]
    tokens = {i: has_token(i, size) for i in range(size)}
    actions = [
        Action(
            "move0", tokens[0],
            assign(x0=lambda s, n=size, kk=k: (s[f"x{n - 1}"] + 1) % kk),
        )
    ]
    for i in range(1, size):
        actions.append(
            Action(f"move{i}", tokens[i],
                   assign(**{f"x{i}": lambda s, i=i: s[f"x{i - 1}"]}))
        )
    return Program(variables, actions, name=f"ring(n={size},K={k})")


def one_token(size: int) -> Predicate:
    tokens = {i: has_token(i, size) for i in range(size)}
    return Predicate(
        lambda s, ts=tokens: sum(1 for t in ts.values() if t(s)) == 1,
        name="one token",
    )


@pytest.mark.parametrize("size,k,expected", [(4, 3, True), (4, 2, False),
                                             (5, 4, True), (5, 3, False)])
def bench_ablate_ring_counter_bound(benchmark, report, size, k, expected):
    ring = raw_ring(size, k)

    def check():
        ts = TransitionSystem(ring, list(ring.states()))
        return check_leads_to(ts, TRUE, one_token(size))

    result = benchmark(check)
    assert bool(result) == expected
    verdict = "stabilizes" if expected else "LIVELOCK (lasso found)"
    report("ABLATE", f"Dijkstra ring n={size}, K={k}: {verdict}")


def bench_ablate_reset_wave_guard(benchmark, report):
    from repro.core import is_nonmasking_tolerant
    from repro.programs import distributed_reset

    model = distributed_reset.build(3, 2)
    rebuilt = []
    for action in model.program.actions:
        if action.name == "reset_root":
            rebuilt.append(
                Action("reset_root",
                       Predicate(lambda s: s["req0"], name="req0"),
                       action.statement)
            )
        else:
            rebuilt.append(action)
    broken = model.program.with_actions(rebuilt, name="reset_no_guard")

    result = benchmark(
        lambda: is_nonmasking_tolerant(
            broken, model.faults, model.spec, model.invariant, model.span
        )
    )
    assert not result
    report("ABLATE", "distributed reset without the wave-completion guard: "
                     "livelock exhibited")
