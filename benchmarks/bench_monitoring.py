"""MONITOR — online syndrome monitoring throughput (repro.monitoring).

Times the frame-aware incremental runtime on a prebuilt write stream
and asserts the subsystem's headline capacity claim: the ``drain`` hot
path must sustain at least 500k events/sec on a ring-shaped bank whose
detectors each read two variables.  Also times campaign-log replay
(translation + re-interleaving + ingest) and the big-int syndrome table
over a witness bank, asserting replay parity against whole-state
evaluation along the way.
"""

import io
import json
import time

from repro.campaigns import Campaign, get_scenario
from repro.core.predicate import Predicate
from repro.core.state import State, Variable
from repro.monitoring import (
    BankDetector,
    DetectorBank,
    MonitorRuntime,
    campaign_bank,
    campaign_to_events,
)

INGEST_EVENTS = 240_000
INGEST_FLOOR = 500_000  # events/sec — the subsystem's acceptance bar


def ring_bank(n=8, k=5):
    """n two-variable "token at i" detectors over an n-variable ring —
    the dirty mask of any write covers exactly two detectors."""
    variables = [Variable(f"x{i}", tuple(range(k))) for i in range(n)]
    detectors = []
    for i in range(n):
        j = (i - 1) % n
        a, b = f"x{i}", f"x{j}"
        same = i == 0  # Dijkstra convention: the root holds on equality
        pred = Predicate(
            lambda s, a=a, b=b, same=same: (s[a] == s[b]) is same,
            name=f"token{i}",
            values_builder=lambda index, a=a, b=b, same=same: (
                lambda v, p=index[a], q=index[b]: (v[p] == v[q]) is same
            ),
        )
        detectors.append(BankDetector(f"token{i}", pred, frozenset({a, b})))
    return DetectorBank(detectors, variables, name="ring")


def ingest_events(n=8, k=5, count=INGEST_EVENTS):
    """A mostly-idle write stream: every fourth write flips a value,
    the rest rewrite the current one (the skip-unchanged fast path)."""
    events = []
    vals = [0] * n
    for step in range(count):
        i = step % n
        if step % 4 == 0:
            vals[i] = (vals[i] + 1) % k
        events.append({"time": float(step), "writes": {f"x{i}": vals[i]}})
    return events


def bench_monitoring_ingest(benchmark, report):
    bank = ring_bank()
    events = ingest_events()

    def run():
        runtime = MonitorRuntime(bank)
        started = time.perf_counter()
        runtime.drain(events)
        return len(events) / (time.perf_counter() - started), runtime

    rate, runtime = benchmark(run)
    assert runtime.events == len(events)
    assert runtime.telemetry.transitions > 0
    # the incremental dirty-mask path must agree with a full recompute
    assert runtime.syndrome == bank.syndrome_of_values(
        [runtime.values()[name] for name in bank.schema.names]
    )
    assert rate >= INGEST_FLOOR, (
        f"incremental ingest sustained only {rate:,.0f} events/sec "
        f"(floor {INGEST_FLOOR:,})"
    )
    report(
        "MONITOR",
        f"ingest {len(events)} events: {rate:,.0f} events/sec "
        f"({runtime.telemetry.transitions} transitions)",
    )


def bench_monitoring_campaign_replay(benchmark, report):
    stream = io.StringIO()
    Campaign(get_scenario("token_ring"), trials=5, seed=17,
             stream=stream).run()
    records = [json.loads(line) for line in
               stream.getvalue().splitlines() if line]

    def run():
        runtime = MonitorRuntime(campaign_bank())
        runtime.drain(campaign_to_events(iter(records)))
        return runtime

    runtime = benchmark(run)
    assert runtime.telemetry.latencies, "replay must close latency windows"

    # parity: whole-state evaluation of the same stream, from scratch
    bank = campaign_bank()
    initial = {v.name: v.domain[0] for v in bank.variables}
    current, offline = dict(initial), []
    check = MonitorRuntime(campaign_bank())
    for event in campaign_to_events(iter(records)):
        if event.get("kind") == "reset":
            current = dict(initial)
        for name, value in (event.get("writes") or {}).items():
            if name in current:
                current[name] = value
        offline.append(bank.syndrome(State(current)))
        assert check.feed(event) == offline[-1]
    report(
        "MONITOR",
        f"replay {runtime.events} events: "
        f"{runtime.telemetry.transitions} transitions, "
        f"latency n={len(runtime.telemetry.latencies)}, parity ok",
    )


def bench_syndrome_table_witness_bank(benchmark, report):
    from repro.core.regions import StateIndex, universe_index
    from repro.programs import token_ring
    from repro.theory import witnesses_for

    model = token_ring.build(4)
    witnesses = witnesses_for(
        model.ring, model.ring, model.invariant, model.spec
    )
    bank = DetectorBank.from_witnesses(witnesses, model.ring)
    index = universe_index(model.ring) or StateIndex(model.ring.states())

    def run():
        return bank.syndrome_table(index)

    table = benchmark(run)
    assert len(table) == index.n
    fired = sum(1 for _, syndrome in table if syndrome)
    assert 0 < fired <= index.n
    report(
        "MONITOR",
        f"witness bank m={bank.m} over {index.n} states: "
        f"{fired} states fire at least one detector",
    )
