"""PERF — micro-benchmarks for the fast state-space core.

Times the primitives this PR's optimization layers target (schema-backed
states, memoized successors, zero-copy edge views, the exploration LRU),
so a regression in any one layer is visible in isolation rather than
only in the end-to-end suites of ``record.py``.  Each bench asserts the
correctness property the fast path must preserve.

Run with ``pytest benchmarks/bench_perf_core.py``; the end-to-end
speedup numbers live in ``BENCH_core.json`` (see ``record.py`` and
``docs/performance.md``).
"""

from repro.core import is_masking_tolerant
from repro.core.exploration import (
    TransitionSystem,
    clear_all_caches,
    clear_system_cache,
    explored_system,
)
from repro.core.regions import iter_bits
from repro.core.state import Schema, State, Variable, state_space
from repro.programs import byzantine


def bench_perf_state_construct_and_assign(benchmark, report):
    """State construction + single-variable assign: the inner loop of
    every action statement."""

    def work():
        state = State(x=0, y=0, z=0)
        for _ in range(1000):
            state = state.assign(x=(state["x"] + 1) % 7)
        return state

    state = benchmark(work)
    assert state["x"] == 1000 % 7 and state["y"] == 0
    report("PERF", "schema-backed assign/getitem round-trip correct")


def bench_perf_state_space_enumeration(benchmark, report):
    """Full-space enumeration through the schema fast path (no per-state
    dict, no per-state sort, lazy hashes)."""
    variables = [Variable(name, range(8)) for name in ("a", "b", "c", "d")]

    states = benchmark(lambda: list(state_space(variables)))
    assert len(states) == 8 ** 4
    assert states[0].schema is states[-1].schema  # one interned schema
    report("PERF", "state_space shares one schema across 4096 states")


def bench_perf_exploration_cold(benchmark, report):
    """Reachable exploration with interning and successor memoization,
    caches dropped before every round (the cold path record.py times)."""
    model = byzantine.build()
    start = model.masking.states_satisfying(model.span)

    def work():
        clear_all_caches()
        return TransitionSystem(
            model.masking, start, fault_actions=list(model.faults.actions)
        )

    system = benchmark(work)
    # the span is fault-closed: exploration confirms it adds no states
    assert len(system.states) == len(start) > 0
    report("PERF", "byzantine masking exploration from span (cold)")


def bench_perf_exploration_quotient_cold(benchmark, report):
    """The same cold exploration through the orbit-canonicalizing
    interner: the S_3 quotient must be ≥3x smaller and build faster."""
    model = byzantine.build()
    start = model.masking.states_satisfying(model.span)

    def work():
        clear_all_caches()
        return TransitionSystem(
            model.masking, start, fault_actions=list(model.faults.actions),
            symmetric=True,
        )

    system = benchmark(work)
    assert 3 * len(system.states) <= len(start)
    report("PERF", "byzantine masking quotient exploration (cold, S_3)")


def bench_perf_explored_system_warm_hit(benchmark, report):
    """A warm :func:`explored_system` call must be a cache probe, not an
    exploration."""
    model = byzantine.build()
    start = tuple(model.masking.states_satisfying(model.span))
    faults = tuple(model.faults.actions)
    first = explored_system(model.masking, start, fault_actions=faults)

    system = benchmark(
        lambda: explored_system(model.masking, start, fault_actions=faults)
    )
    assert system is first
    report("PERF", "explored_system warm hit returns the shared instance")


def bench_perf_edges_sweep(benchmark, report):
    """Closure-check shape: sweep every state's merged edge view.  The
    no-fault-edge case must hand back the stored tuple without copying."""
    model = byzantine.build()
    start = model.masking.states_satisfying(model.span)
    system = TransitionSystem(
        model.masking, start, fault_actions=list(model.faults.actions)
    )

    def work():
        edges = 0
        edges_from = system.edges_from
        for state in system.states:
            edges += len(edges_from(state))
        return edges

    total = benchmark(work)
    assert total > 0
    some_state = next(iter(system.states))
    if not system.fault_edges_from(some_state):
        assert system.edges_from(some_state) is system.edges_from(some_state)
    report("PERF", "edge sweep over explored byzantine system")


def bench_perf_masking_certificate_warm(benchmark, report):
    """End-to-end tolerance certificate with all caches warm: the shape
    repeated verification (synthesis loops, test suites) actually runs."""
    model = byzantine.build()
    is_masking_tolerant(
        model.masking, model.faults, model.spec, model.invariant, model.span
    )  # warm the system cache and successor memos

    result = benchmark(
        lambda: is_masking_tolerant(
            model.masking, model.faults, model.spec, model.invariant,
            model.span,
        )
    )
    assert result
    report("PERF", "warm masking certificate (byzantine n=4 f=1)")


def bench_perf_iter_bits_sparse(benchmark, report):
    """Sparse bitset iteration (~1% full): the isolate-lowest-bit path
    must skip the empty bytes entirely."""
    n = 100_000
    ids = list(range(0, n, 97))
    bits = 0
    for i in ids:
        bits |= 1 << i

    out = benchmark(lambda: list(iter_bits(bits, n)))
    assert out == ids
    report("PERF", f"iter_bits sparse ({len(ids)}/{n} bits set)")


def bench_perf_iter_bits_dense(benchmark, report):
    """Dense bitset iteration (>50% full): the byte-scan path, where
    per-bit big-int arithmetic would lose."""
    n = 100_000
    bits = (1 << n) - 1
    for i in range(0, n, 1000):  # punch a few holes, stay dense
        bits &= ~(1 << i)
    expected = [i for i in range(n) if i % 1000 != 0]

    out = benchmark(lambda: list(iter_bits(bits, n)))
    assert out == expected
    report("PERF", f"iter_bits dense ({n - n // 1000}/{n} bits set)")


def bench_perf_schema_interning(benchmark, report):
    """Schema.of on a hot name set is one pooled dict probe."""
    names = ("b.1", "b.2", "b.3", "d.1", "d.2", "d.3", "dg", "bg",
             "out.1", "out.2", "out.3")
    first = Schema.of(names)

    schema = benchmark(lambda: Schema.of(names))
    assert schema is first
    report("PERF", "Schema.of warm probe is identity-stable")
