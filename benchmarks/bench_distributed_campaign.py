"""DIST — distributed campaign scheduling (repro.campaigns.distributed).

Times a Byzantine campaign scheduled through the ``repro serve`` job
queue and asserts the properties the subsystem exists for: the merged
verdict and event log are identical to the single-process run for any
worker count, a warm re-run is served entirely from the
content-addressed store, and the scheduler's overhead over the direct
path stays modest.  The wall-clock *scaling* claim (>=3x from 1 to 8
workers) only holds when the workers actually run on separate cores,
so it is asserted only on machines with enough CPUs — the parity and
overhead claims are asserted everywhere.
"""

import asyncio
import io
import json
import os
import threading
import time

from repro.campaigns import (
    Campaign,
    DistributedCampaign,
    get_scenario,
    worker_loop,
)
from repro.store import MemoryStore
from repro.store.serve import StoreServer

TRIALS, SEED = 24, 11
#: simulation horizon per trial — long enough that trial compute (not
#: queue round trips) dominates a batch, as in any real campaign
HORIZON = 200.0
#: scheduler overhead bound over the direct in-process run, measured
#: with one worker (same compute, plus the queue round trips); only
#: gated with spare cores — on fewer, the worker thread, the asyncio
#: server, and the scheduler time-share one core and the "overhead" is
#: mostly context switching, so just a sanity bound applies
OVERHEAD_BOUND = 1.25
OVERHEAD_SANITY = 4.0
MIN_GATE_CORES = 4
#: 1 -> 8 worker speedup floor, asserted only with >= 8 usable cores
SCALING_FLOOR = 3.0


class _Server:
    def __init__(self):
        self.server = StoreServer(MemoryStore(), port=0)
        self.loop = asyncio.new_event_loop()

    def __enter__(self):
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert ready.wait(10)
        self.url = f"http://127.0.0.1:{self.server.port}"
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        # cancel any parked connection handlers before closing, or their
        # coroutines get garbage-collected mid-await
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.close()


def _workers(url, count):
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=worker_loop, args=(url,),
            kwargs={"stop": stop, "lease_s": 120.0, "worker_id": f"w{i}"},
            daemon=True,
        )
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return stop, threads


def _stripped(buf):
    lines = []
    for line in buf.getvalue().splitlines():
        record = json.loads(line)
        lines.append(json.dumps(
            {k: v for k, v in record.items() if not k.startswith("wall")},
            sort_keys=True,
        ))
    return lines


def _run_distributed(url, workers, seed=SEED):
    stop, threads = _workers(url, workers)
    buf = io.StringIO()
    try:
        campaign = DistributedCampaign(
            get_scenario("byzantine"), trials=TRIALS, seed=seed,
            horizon=HORIZON, stream=buf, base_url=url, batch_size=4,
            deadline_s=600,
        )
        started = time.perf_counter()
        result = campaign.run()
        wall = time.perf_counter() - started
    finally:
        stop.set()
        for t in threads:
            t.join(10)
    assert not campaign.degraded
    return campaign, result, _stripped(buf), wall


def bench_distributed_parity_and_overhead(benchmark, report):
    buf = io.StringIO()
    direct = Campaign(
        get_scenario("byzantine"), trials=TRIALS, seed=SEED,
        horizon=HORIZON, stream=buf,
    )
    started = time.perf_counter()
    result0 = direct.run()
    direct_wall = time.perf_counter() - started
    jsonl0 = _stripped(buf)

    def run():
        with _Server() as srv:
            return _run_distributed(srv.url, workers=1)

    campaign, result, jsonl, wall = benchmark(run)
    assert jsonl == jsonl0, "distributed log must match the direct run"
    assert result.verdict == result0.verdict
    overhead = wall / direct_wall if direct_wall > 0 else 1.0
    cores = os.cpu_count() or 1
    if cores >= MIN_GATE_CORES:
        assert overhead < OVERHEAD_BOUND, (
            f"scheduler overhead {overhead:.2f}x exceeds {OVERHEAD_BOUND}x"
        )
        verdict = f"{overhead:.2f}x, bound {OVERHEAD_BOUND}x"
    else:
        assert overhead < OVERHEAD_SANITY, (
            f"scheduler overhead {overhead:.2f}x exceeds even the "
            f"single-core sanity bound {OVERHEAD_SANITY}x"
        )
        verdict = (
            f"{overhead:.2f}x, sanity bound {OVERHEAD_SANITY}x "
            f"on {cores} core(s)"
        )
    report(
        "DIST",
        f"byzantine {TRIALS} trials, 1 worker: parity ok, "
        f"direct {direct_wall:.3f}s vs distributed {wall:.3f}s ({verdict})",
    )


def bench_distributed_warm_rerun(benchmark, report):
    with _Server() as srv:
        first, _, jsonl1, _ = _run_distributed(srv.url, workers=2)

        def run():
            return _run_distributed(srv.url, workers=2)

        campaign, _, jsonl2, wall = benchmark(run)
    assert jsonl2 == jsonl1
    assert first.batches_from_store == 0
    assert campaign.batches_from_store == campaign.batches_total
    report(
        "DIST",
        f"warm re-run: {campaign.batches_total} batches all served from "
        f"the store in {wall:.3f}s",
    )


def bench_distributed_scaling(benchmark, report):
    cores = os.cpu_count() or 1
    with _Server() as srv:
        _, result1, jsonl1, wall1 = _run_distributed(
            srv.url, workers=1, seed=SEED + 1
        )
    with _Server() as srv:

        def run():
            return _run_distributed(srv.url, workers=8, seed=SEED + 1)

        _, result8, jsonl8, wall8 = benchmark(run)
    assert jsonl8 == jsonl1, "worker count must be unobservable"
    assert result8.verdict == result1.verdict
    speedup = wall1 / wall8 if wall8 > 0 else 1.0
    if cores >= 8:
        assert speedup >= SCALING_FLOOR, (
            f"1->8 workers sped up only {speedup:.2f}x "
            f"(floor {SCALING_FLOOR}x on {cores} cores)"
        )
        verdict = f"{speedup:.2f}x (floor {SCALING_FLOOR}x)"
    else:
        # thread workers share the GIL and this machine has too few
        # cores for the wall-clock claim; parity above is the gate
        verdict = f"{speedup:.2f}x (not gated: {cores} core(s))"
    report(
        "DIST",
        f"scaling 1->8 workers: {wall1:.3f}s -> {wall8:.3f}s, {verdict}",
    )
