"""SEC62 — Section 6.2: Byzantine agreement by composition (n=4, f=1).

The ladder: IB‖BYZ violates agreement; adding DB (witness-guarded
outputs) gives fail-safe tolerance; adding CB gives masking tolerance —
each rung model-checked over the full 23k-state space."""

from repro.core import (
    is_failsafe_tolerant,
    is_masking_tolerant,
    violates_spec,
)


def bench_sec62_ib_violates_agreement(benchmark, byz, report):
    result = benchmark(
        lambda: violates_spec(
            byz.ib_with_byz, byz.spec.safety_part(), byz.invariant_ib,
            fault_actions=list(byz.faults.actions),
        )
    )
    assert result
    report("SEC62", "IB‖BYZ violates agreement under ≤1 Byzantine process")


def bench_sec62_failsafe_composition(benchmark, byz, report):
    result = benchmark(
        lambda: is_failsafe_tolerant(
            byz.failsafe, byz.faults, byz.spec, byz.invariant, byz.span
        )
    )
    assert result
    report("SEC62", "IB1‖DB;IB2‖BYZ is fail-safe Byzantine-tolerant")


def bench_sec62_failsafe_blocks(benchmark, byz, report):
    """The motivation for CB: without it a minority-copy process blocks
    (masking fails on liveness)."""
    result = benchmark(
        lambda: is_masking_tolerant(
            byz.failsafe, byz.faults, byz.spec, byz.invariant, byz.span
        )
    )
    assert not result
    report("SEC62", "fail-safe composition is NOT masking (a process blocks)")


def bench_sec62_masking_composition(benchmark, byz, report):
    result = benchmark(
        lambda: is_masking_tolerant(
            byz.masking, byz.faults, byz.spec, byz.invariant, byz.span
        )
    )
    assert result
    report("SEC62", "IB1‖DB;IB2‖CB‖BYZ is masking Byzantine-tolerant")
