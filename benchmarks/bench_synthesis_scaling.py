"""SYNTH — the companion-method claim: tolerance components can be
*calculated*.  Synthesis cost as the state space grows.

The memory-access family is parameterized by the size of the data
domain; the table reports state-space size vs. time to synthesize (and
re-verify) fail-safe, nonmasking, and masking versions of the bare
intolerant program."""

import pytest

from repro import synthesis
from repro.core import TRUE
from repro.programs import memory_access


def _model(domain_size: int):
    return memory_access.build(value=1, data_domain=tuple(range(domain_size)))


@pytest.mark.parametrize("domain_size", [2, 4, 8])
def bench_synth_failsafe_scaling(benchmark, report, domain_size):
    model = _model(domain_size)

    def run():
        result = synthesis.add_failsafe(
            model.p, model.fault_anytime, model.spec
        )
        return result.verify(model.fault_anytime, model.spec)

    assert benchmark(run)
    report(
        "SYNTH",
        f"fail-safe synthesis, |state space|={model.p.state_count():4d} "
        f"(data domain {domain_size}): PASS",
    )


@pytest.mark.parametrize("domain_size", [2, 4, 8])
def bench_synth_nonmasking_scaling(benchmark, report, domain_size):
    model = _model(domain_size)

    def run():
        result = synthesis.add_nonmasking(
            model.p, model.fault_anytime, model.S_pn, TRUE
        )
        return result.verify(model.fault_anytime, model.spec)

    assert benchmark(run)
    report(
        "SYNTH",
        f"nonmasking synthesis, |state space|={model.p.state_count():4d}: PASS",
    )


@pytest.mark.parametrize("domain_size", [2, 4, 8])
def bench_synth_masking_scaling(benchmark, report, domain_size):
    model = _model(domain_size)

    def run():
        result = synthesis.add_masking(
            model.p, model.fault_anytime, model.spec
        )
        return result.verify(model.fault_anytime, model.spec)

    assert benchmark(run)
    report(
        "SYNTH",
        f"masking synthesis, |state space|={model.p.state_count():4d}: PASS",
    )
