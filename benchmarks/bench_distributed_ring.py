"""DIST-RING — distributed simulation of the verified mutex protocol.

The refinement story measured: the model-checked regeneration corrector
(an atomic "no token anywhere" guard) is implemented as a local timeout
watchdog; the sweep shows the Safeness/latency tradeoff the refinement
introduces — aggressive timeouts transiently duplicate the token,
conservative ones pay in throughput, and the intolerant ring collapses
after the first loss."""

import pytest

from repro.sim.token_ring import run_ring_experiment


def bench_distring_intolerant_collapse(benchmark, report):
    result = benchmark(
        lambda: run_ring_experiment(
            timeout=None, loss_probability=0.05, horizon=400, seed=1
        )
    )
    assert result.total_visits < 20
    report("DIST-RING", f"no corrector: {result.as_row()}")


@pytest.mark.parametrize("timeout", [2.0, 6.0, 12.0, 30.0])
def bench_distring_timeout_sweep(benchmark, report, timeout):
    result = benchmark(
        lambda: run_ring_experiment(
            timeout=timeout, loss_probability=0.05, horizon=400, seed=1
        )
    )
    assert result.total_visits > 20
    report("DIST-RING", result.as_row())
