"""CAMPAIGN — randomized fault-injection campaigns (repro.campaigns).

Times the campaign engine end-to-end on the token ring and TMR
scenarios and asserts the qualitative claims the subsystem exists to
measure: the ring's regeneration corrector keeps the ring at least
fail-safe-or-better across every seeded trial, and TMR's repairing
voter masks single-fault schedules.  Also times raw schedule
generation, which must be cheap enough to never dominate a trial.
"""

import random

from repro.campaigns import (
    Campaign,
    get_scenario,
    random_schedule,
)


def bench_campaign_token_ring(benchmark, report):
    scenario = get_scenario("token_ring")

    def run():
        return Campaign(scenario, trials=10, seed=0).run()

    result = benchmark(run)
    assert result.summary["completed"] == 10
    assert result.verdict in ("masking", "failsafe", "nonmasking"), (
        "the regeneration corrector should never leave the ring intolerant"
    )
    counts = result.summary["counts"]
    report(
        "CAMPAIGN",
        f"token_ring 10 trials: verdict={result.verdict} "
        f"masking={counts['masking']} failsafe={counts['failsafe']} "
        f"nonmasking={counts['nonmasking']} "
        f"faults={result.summary['faults_injected']}",
    )


def bench_campaign_tmr_masks_single_faults(benchmark, report):
    scenario = get_scenario("tmr")

    def run():
        # budget 1: at most one fault per trial — inside TMR's design point
        return Campaign(scenario, trials=10, seed=7, budget=1).run()

    result = benchmark(run)
    assert result.verdict == "masking", (
        "TMR with a repairing voter must mask every single-fault schedule"
    )
    latency = result.summary["convergence_time"]
    report(
        "CAMPAIGN",
        f"tmr single-fault 10 trials: verdict={result.verdict} "
        f"repair p90={latency['p90']}",
    )


def bench_schedule_generation(benchmark, report):
    spec = get_scenario("token_ring").spec.with_budget(50)

    def run():
        rng = random.Random(3)
        return [random_schedule(spec, rng) for _ in range(100)]

    schedules = benchmark(run)
    drawn = sum(len(s) for s in schedules)
    assert drawn >= 100 * 50  # crash/restart pairs make it exceed the budget
    report("CAMPAIGN", f"schedule generation: {drawn} injectors per batch")
