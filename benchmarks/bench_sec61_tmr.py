"""SEC61 — Section 6.1: triple modular redundancy by composition.

The paper's constructive ladder: IR (intolerant) → DR;IR (fail-safe) →
DR;IR ‖ CR (masking) — each rung certified, plus the synthesis route
(masking TMR *calculated* from bare IR)."""

from repro import synthesis
from repro.core import (
    is_detector,
    is_failsafe_tolerant,
    is_masking_tolerant,
    violates_spec,
)


def bench_sec61_ir_violates(benchmark, tmr_model, report):
    result = benchmark(
        lambda: violates_spec(
            tmr_model.ir, tmr_model.spec.safety_part(), tmr_model.invariant,
            fault_actions=list(tmr_model.faults.actions),
        )
    )
    assert result
    report("SEC61", "IR violates SPEC_io under one-input corruption")


def bench_sec61_stateless_detector(benchmark, tmr_model, report):
    result = benchmark(
        lambda: is_detector(
            tmr_model.detector_eval, tmr_model.witness_dr,
            tmr_model.detection_dr, tmr_model.span_inputs,
        )
    )
    assert result
    report("SEC61", "(x=y ∨ x=z) detects (x=uncor) from ≤1-corruption states")


def bench_sec61_dr_ir_failsafe(benchmark, tmr_model, report):
    result = benchmark(
        lambda: is_failsafe_tolerant(
            tmr_model.dr_ir, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )
    )
    assert result
    report("SEC61", "DR;IR is fail-safe one-corruption-tolerant")


def bench_sec61_tmr_masking(benchmark, tmr_model, report):
    result = benchmark(
        lambda: is_masking_tolerant(
            tmr_model.tmr, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )
    )
    assert result
    report("SEC61", "DR;IR ‖ CR is masking one-corruption-tolerant")


def bench_sec61_synthesized_tmr(benchmark, tmr_model, report):
    """Question 2 on this example: calculate the masking version from
    the intolerant IR and re-verify it."""

    def synthesize_and_verify():
        result = synthesis.add_masking(
            tmr_model.ir, tmr_model.faults, tmr_model.spec
        )
        return result.verify(tmr_model.faults, tmr_model.spec)

    assert benchmark(synthesize_and_verify)
    report("SEC61", "masking TMR synthesized from bare IR and re-verified")
