#!/usr/bin/env python
"""Record the perf-core benchmark numbers into ``BENCH_core.json``.

Usage::

    PYTHONPATH=src python benchmarks/record.py           # full run
    PYTHONPATH=src python benchmarks/record.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/record.py --rebaseline

Each *suite* is a named workload over the state-space core — cold
reachable-state exploration, full tolerance-certificate checks, and the
synthesis pipeline — timed end to end.  Models are rebuilt fresh for
every repetition so cross-repetition memoization never flatters the
numbers; memoization *within* one workload (e.g. the two explorations a
tolerance check performs over the same ``p [] F`` system) is part of
what is being measured.

The emitted ``BENCH_core.json`` contains, per suite, the wall time,
the number of reachable states the workload explores, the derived
states/sec, and the speedup against the committed pre-optimization
baseline (``benchmarks/baseline_core.json``, recorded at the seed
commit before the fast state-space core landed).  ``--rebaseline``
rewrites that baseline file from the current run instead.

See ``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "baseline_core.json")
OUTPUT_PATH = os.path.join(HERE, "..", "BENCH_core.json")


def _clear_caches() -> None:
    """Reset every exploration memo-cache so every repetition is cold:
    the system LRU, the per-action successor memos, and the frame-class
    memos (``clear_all_caches``; older trees only expose the system
    cache, the oldest none).  Finish with a full collection so every
    repetition starts from the same (empty) garbage state — without it,
    cyclic garbage from the previous repetition gets collected *during*
    the next timed run and the wall spread becomes mostly GC noise."""
    import gc

    try:
        from repro.core.exploration import clear_all_caches
    except ImportError:
        try:
            from repro.core.exploration import clear_system_cache
        except ImportError:  # pre-optimization tree: nothing to clear
            return
        clear_system_cache()
        gc.collect()
        return
    clear_all_caches()
    gc.collect()


# ---------------------------------------------------------------------------
# suites: each returns (explored reachable states, opaque result)
# ---------------------------------------------------------------------------

def _suite_byzantine_explore() -> int:
    """Cold reachable exploration of the masking Byzantine composition
    under its fault class from the fault-span (the SEC62 workload)."""
    from repro.programs import byzantine

    model = byzantine.build()
    ts = model.faults.system(model.masking, model.span)
    return len(ts.states)


def _suite_byzantine_tolerance() -> int:
    """The two SEC62 tolerance certificates (fail-safe and masking) in
    symmetric mode: the S_3 quotient over the non-generals (144 states
    vs 520 unreduced) carries the same verdicts —
    ``tests/test_symmetry_parity.py`` pins the parity against the
    unreduced oracle."""
    from repro.core import is_failsafe_tolerant, is_masking_tolerant
    from repro.programs import byzantine

    model = byzantine.build()
    failsafe = is_failsafe_tolerant(
        model.failsafe, model.faults, model.spec, model.invariant, model.span,
        symmetric=True,
    )
    masking = is_masking_tolerant(
        model.masking, model.faults, model.spec, model.invariant, model.span,
        symmetric=True,
    )
    assert failsafe and masking, "byzantine certificates must pass"
    ts = model.faults.system(model.masking, model.span, symmetric=True)
    return len(ts.states)


def _synthesis_domains(quick: bool) -> Tuple[int, ...]:
    return (8, 16) if quick else (8, 64, 128)


def _suite_synthesis(quick: bool = False) -> int:
    """The SYNTH scaling workload: synthesize and re-verify fail-safe
    and masking versions of the memory-access family as the data domain
    grows (the `bench_synthesis_scaling.py` configurations, extended to
    larger domains so the timing is meaningful)."""
    from repro import synthesis
    from repro.programs import memory_access

    states = 0
    for domain_size in _synthesis_domains(quick):
        model = memory_access.build(
            value=1, data_domain=tuple(range(domain_size))
        )
        failsafe = synthesis.add_failsafe(
            model.p, model.fault_anytime, model.spec
        )
        assert failsafe.verify(model.fault_anytime, model.spec)
        masking = synthesis.add_masking(
            model.p, model.fault_anytime, model.spec
        )
        assert masking.verify(model.fault_anytime, model.spec)
        states += model.p.state_count()
    return states


def _suite_tmr_tolerance() -> int:
    """The SEC61 TMR masking certificate."""
    from repro.core import is_masking_tolerant
    from repro.programs import tmr

    model = tmr.build()
    assert is_masking_tolerant(
        model.tmr, model.faults, model.spec, model.invariant, model.span
    )
    ts = model.faults.system(model.tmr, model.span)
    return len(ts.states)


def _suite_token_ring_stabilization(quick: bool = False) -> int:
    """Larger-instance workload: the self-stabilization certificate of
    Dijkstra's token ring at n=6/K=5 (15,625 states — 61x the bundled
    n=4 scenario), n=5/K=4 under ``--quick``.

    This is the heaviest fixpoint shape in the library: convergence from
    *every* state (span = true) under the full transient-corruption
    fault class, i.e. forward closure plus fair-SCC analysis over the
    whole product space.  (The issue's suggested n≥9 is unreachable for
    any engine at K ≥ n-1 — 8^9 ≈ 1.3e8 states — so "larger" here means
    the largest instance that stays within the explorable range.)
    """
    from repro.core import TRUE, is_nonmasking_tolerant
    from repro.programs import token_ring

    size, k = (5, 4) if quick else (6, 5)
    model = token_ring.build(size, k)
    assert is_nonmasking_tolerant(
        model.ring, model.faults, model.spec, model.invariant, TRUE
    )
    ts = model.faults.system(model.ring, TRUE)
    return len(ts.states)


def _suite_nmr_tolerance_sym() -> int:
    """The 5-way majority voter's masking certificate on the S_5
    quotient: the 32 reachable input/output vectors collapse to the 6
    corruption-count orbits."""
    from repro.core import is_masking_tolerant
    from repro.programs import tmr

    model = tmr.build_nmr(5)
    assert is_masking_tolerant(
        model.nmr, model.faults, model.spec, model.invariant, model.span,
        symmetric=True,
    )
    ts = model.faults.system(model.nmr, model.span, symmetric=True)
    return len(ts.states)


def _suite_token_ring_stabilization_sym() -> int:
    """The n=6/K=5 stabilization certificate on the Z_5 value-rotation
    quotient (3,125 states vs 15,625).  Same instance in quick and full
    mode, so the regression gate can always compare it."""
    from repro.core import TRUE, is_nonmasking_tolerant
    from repro.programs import token_ring

    model = token_ring.build(6, 5)
    assert is_nonmasking_tolerant(
        model.ring, model.faults, model.spec, model.invariant, TRUE,
        symmetric=True,
    )
    ts = model.faults.system(model.ring, TRUE, symmetric=True)
    return len(ts.states)


def _suite_byzantine_scaling_sym(quick: bool = False) -> int:
    """Quotient exploration of the k-non-general Byzantine family from
    the protocol's initial states — the previously-infeasible instance.

    At k=13 the unreduced reachable graph (computed *exactly* below
    by summing orbit sizes — the reachable set is a union of orbits) is
    over 10 million states, far past the 2M exploration cap; the S_13
    quotient explores it in under a thousand states.  ``--quick`` runs
    k=5, so this suite's state count legitimately differs between modes
    and is deliberately NOT in :data:`STATE_GATED`."""
    import math

    from repro.core import explored_system
    from repro.programs import byzantine

    k = 5 if quick else 13
    ngs = tuple(range(1, k + 1))
    model = byzantine.build_family(ngs)
    quot = explored_system(
        model.masking, byzantine.initial_states(ngs), model.faults,
        symmetric=True,
    )
    blocks = model.masking.symmetry.blocks
    unreduced = 0
    for state in quot.states:
        counts: Dict[Tuple, int] = {}
        for block in blocks:
            key = tuple(state[name] for name in block)
            counts[key] = counts.get(key, 0) + 1
        size = math.factorial(k)
        for count in counts.values():
            size //= math.factorial(count)
        unreduced += size
    if not quick:
        from repro.core.exploration import DEFAULT_MAX_STATES

        assert unreduced > DEFAULT_MAX_STATES, (
            f"k={k} was supposed to be infeasible unreduced "
            f"({unreduced} states vs cap {DEFAULT_MAX_STATES})"
        )
    return len(quot.states)


def _suite_token_ring_large() -> int:
    """Full-space census of the n=8/K=7 token ring in packed-code space:
    7^8 = 5,764,801 states expanded through compiled code kernels
    without materializing a single ``State``.  This is the instance the
    interpreted engine cannot touch (the 2M ``DEFAULT_MAX_STATES`` cap
    sits far below the space, and State-object exploration would need
    gigabytes); the exact count is the correctness gate.  Same instance
    in quick and full mode."""
    from repro.core.kernels import explore_codes
    from repro.programs import token_ring

    model = token_ring.build(8, 7)
    reach = explore_codes(model.ring, "all")
    assert reach.states == 7 ** 8, (
        f"token ring census drifted: {reach.states} != {7 ** 8}"
    )
    return reach.states


def _suite_byzantine_k13_unreduced() -> int:
    """Unreduced protocol-run census of the k=13 Byzantine agreement
    program from its initial states: 2·3^13 = 3,188,646 states (per
    general value, each non-general's (d, out) pair walks ⊥⊥ → v⊥ → vv).
    ``byzantine_scaling_sym`` checks the same family on the S_13
    quotient; this suite explores the *unreduced* graph the quotient
    stands in for, which only the code-space kernels can reach.  Same
    instance in quick and full mode."""
    from repro.core.kernels import explore_codes
    from repro.programs import byzantine

    ngs = tuple(range(1, 14))
    model = byzantine.build_family(ngs)
    reach = explore_codes(model.ib, byzantine.initial_states(ngs))
    expected = 2 * 3 ** 13
    assert reach.states == expected, (
        f"byzantine census drifted: {reach.states} != {expected}"
    )
    return reach.states


def _suite_monitoring_ingest() -> int:
    """Online monitoring ingest: drain a prebuilt 240k-event write
    stream through the frame-aware incremental runtime over an 8-ring
    detector bank (two-variable read frames, every fourth write flips a
    value).  The returned "states" figure is the event count, so the
    derived states/sec is the end-to-end ingest rate including event
    construction; ``bench_monitoring.py`` times the bare ``drain`` hot
    path and asserts its 500k events/sec floor.  Same event count in
    quick and full mode, so the regression gate can always compare."""
    from repro.core.predicate import Predicate
    from repro.core.state import Variable
    from repro.monitoring import BankDetector, DetectorBank, MonitorRuntime

    n, k, count = 8, 5, 240_000
    variables = [Variable(f"x{i}", tuple(range(k))) for i in range(n)]
    detectors = []
    for i in range(n):
        j = (i - 1) % n
        a, b = f"x{i}", f"x{j}"
        same = i == 0
        pred = Predicate(
            lambda s, a=a, b=b, same=same: (s[a] == s[b]) is same,
            name=f"token{i}",
            values_builder=lambda index, a=a, b=b, same=same: (
                lambda v, p=index[a], q=index[b]: (v[p] == v[q]) is same
            ),
        )
        detectors.append(BankDetector(f"token{i}", pred, frozenset({a, b})))
    bank = DetectorBank(detectors, variables, name="ring")

    events = []
    vals = [0] * n
    for step in range(count):
        i = step % n
        if step % 4 == 0:
            vals[i] = (vals[i] + 1) % k
        events.append({"time": float(step), "writes": {f"x{i}": vals[i]}})

    runtime = MonitorRuntime(bank)
    runtime.drain(events)
    assert runtime.events == count
    assert runtime.syndrome == bank.syndrome_of_values(
        [runtime.values()[name] for name in bank.schema.names]
    )
    return count


#: lazily started fixture of the ``campaign_distributed`` suite: one
#: in-process ``repro serve`` front end plus two pull workers, shared
#: by every repetition (the scheduler/worker round trips are what the
#: suite times; the server thread is per harness process)
_DISTRIBUTED: Dict[str, object] = {"url": None, "seed": 0}

#: fixed trial count of the ``campaign_distributed`` suite — its
#: deterministic "states" figure in quick and full mode
_DISTRIBUTED_TRIALS = 16


def _prepare_campaign_distributed(quick: bool) -> None:
    """Untimed set-up: start the job-queue server and two workers once.
    Each repetition then uses a fresh master seed, so batch artifacts
    from earlier repetitions are never cache hits — the suite times
    scheduling + computation, not store reads."""
    if _DISTRIBUTED["url"] is not None:
        return
    import asyncio
    import threading

    from repro.campaigns import worker_loop
    from repro.store import MemoryStore
    from repro.store.serve import StoreServer

    server = StoreServer(MemoryStore(), port=0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    threading.Thread(target=run, daemon=True).start()
    if not ready.wait(10):
        raise RuntimeError("benchmark job-queue server failed to start")
    url = f"http://127.0.0.1:{server.port}"
    stop = threading.Event()
    for i in range(2):
        threading.Thread(
            target=worker_loop, args=(url,),
            kwargs={"stop": stop, "lease_s": 120.0,
                    "worker_id": f"bench-w{i}"},
            daemon=True,
        ).start()
    _DISTRIBUTED["url"] = url


def _suite_campaign_distributed() -> int:
    """A Byzantine-agreement campaign scheduled through the job queue:
    trial batches leased by pull workers over HTTP, results merged in
    trial order.  The wall is the end-to-end distributed run — server
    round trips, batch encode/decode, and replay included — so the
    derived states/sec is the queue's trial throughput, floored by
    ``THROUGHPUT_FLOORS`` in the regression gate."""
    from repro.campaigns import DistributedCampaign, get_scenario

    seed = 1_000 + _DISTRIBUTED["seed"]
    _DISTRIBUTED["seed"] += 1
    campaign = DistributedCampaign(
        get_scenario("byzantine"), trials=_DISTRIBUTED_TRIALS, seed=seed,
        horizon=200.0, stream=None, base_url=_DISTRIBUTED["url"],
        batch_size=4, deadline_s=600,
    )
    result = campaign.run()
    assert not campaign.degraded, "benchmark server must be reachable"
    assert campaign.batches_from_store == 0, (
        "fresh seed per repetition: store hits would flatter the wall"
    )
    assert result.summary["completed"] == _DISTRIBUTED_TRIALS
    return _DISTRIBUTED_TRIALS


#: lazily resolved spec + population flag of the certificate-store
#: suite's backing store (one per harness process)
_WARM_STORE: Dict[str, object] = {"spec": None, "populated": False}


def _warm_store_spec() -> str:
    """The store the ``certificate_store_warm`` suite runs against: the
    process-wide active store when one is installed (``--store`` /
    ``--cold`` / ``--warm`` / ``REPRO_STORE``), else a temporary sqlite
    file private to this harness run."""
    if _WARM_STORE["spec"] is None:
        from repro.store import backend as store_backend

        active = store_backend.active_spec()
        if active is not None:
            _WARM_STORE["spec"] = active
        else:
            fd, path = tempfile.mkstemp(
                prefix="repro_bench_store_", suffix=".sqlite"
            )
            os.close(fd)
            _WARM_STORE["spec"] = path
    return _WARM_STORE["spec"]


def _catalogue_checks() -> int:
    """Run every catalogue certificate, asserting each passes; returns
    the number of checks (the suite's deterministic 'states' figure)."""
    from repro.cli import CATALOGUE

    count = 0
    for name, entry in CATALOGUE.items():
        _, checks = entry()
        for check in checks:
            result = check()
            assert result, f"catalogue check failed for {name}: {result}"
            count += 1
    return count


def _prepare_certificate_store_warm(quick: bool) -> None:
    """Untimed set-up pass: install the suite's store and populate it
    once (the first repetition pays exploration + verification; the
    timed repetitions are then served from persistent artifacts)."""
    from repro.store import backend as store_backend

    store_backend.set_active_store(_warm_store_spec())
    if not _WARM_STORE["populated"]:
        _clear_caches()
        _catalogue_checks()
        _WARM_STORE["populated"] = True


def _suite_certificate_store_warm() -> int:
    """Warm-store catalogue verification: every tolerance/refinement
    certificate of the bundled catalogue, answered from the persistent
    certificate store populated by the (untimed) prepare pass.  The
    'states' figure is the catalogue's check count — fixed by
    construction in quick and full mode, so the regression gate compares
    it exactly (a drift means the catalogue changed, not the store)."""
    return _catalogue_checks()


SUITES: Dict[str, Callable[[bool], int]] = {
    "byzantine_explore": lambda quick: _suite_byzantine_explore(),
    "byzantine_tolerance": lambda quick: _suite_byzantine_tolerance(),
    "synthesis": _suite_synthesis,
    "tmr_tolerance": lambda quick: _suite_tmr_tolerance(),
    "token_ring_stabilization": _suite_token_ring_stabilization,
    "nmr_tolerance_sym": lambda quick: _suite_nmr_tolerance_sym(),
    "token_ring_stabilization_sym":
        lambda quick: _suite_token_ring_stabilization_sym(),
    "byzantine_scaling_sym": _suite_byzantine_scaling_sym,
    "token_ring_large": lambda quick: _suite_token_ring_large(),
    "byzantine_k13_unreduced":
        lambda quick: _suite_byzantine_k13_unreduced(),
    "monitoring_ingest": lambda quick: _suite_monitoring_ingest(),
    "campaign_distributed":
        lambda quick: _suite_campaign_distributed(),
    # keep last: installs a process-wide certificate store
    "certificate_store_warm":
        lambda quick: _suite_certificate_store_warm(),
}

#: per-suite untimed set-up hooks, run before each repetition's cache
#: clear + timed body
PREPARE: Dict[str, Callable[[bool], None]] = {
    "campaign_distributed": _prepare_campaign_distributed,
    "certificate_store_warm": _prepare_certificate_store_warm,
}

#: minimum sustained states-per-second (for ``campaign_distributed``:
#: trials/sec through the job queue) enforced by ``check_regression.py``
#: on top of the relative-slowdown gate — an absolute floor catches a
#: scheduler that got uniformly slower before a record is re-committed
THROUGHPUT_FLOORS: Dict[str, float] = {
    "campaign_distributed": 4.0,
}

#: suites whose ``states`` count is a *quotient* size that must match
#: the committed record exactly: a canonicalization change that alters
#: the orbit count is a correctness bug, not a workload change, so the
#: regression gate fails (rather than skips) on a mismatch.  These
#: suites run the same instance in quick and full mode.
#: ``byzantine_scaling_sym`` is excluded: quick mode runs k=5 where the
#: full record holds k=13, so its counts differ by design.
#: ``monitoring_ingest`` qualifies for a different reason: its "states"
#: figure is the event count, fixed by construction in both modes, so a
#: mismatch means the workload definition drifted from the record.
#: The code-space censuses (``token_ring_large``,
#: ``byzantine_k13_unreduced``) are gated on their closed-form exact
#: counts: a kernel-compilation change that alters either is a
#: correctness bug in the successor arithmetic.
#: ``campaign_distributed`` runs the same fixed trial count in both
#: modes, so its figure is gated like ``monitoring_ingest``'s.
STATE_GATED = frozenset({
    "byzantine_tolerance",
    "nmr_tolerance_sym",
    "token_ring_stabilization_sym",
    "token_ring_large",
    "byzantine_k13_unreduced",
    "monitoring_ingest",
    "campaign_distributed",
    "certificate_store_warm",
})


def run_suite(
    name: str, repeat: int, quick: bool, prewarm: bool = False
) -> Dict[str, object]:
    suite = SUITES[name]
    prepare = PREPARE.get(name)
    if prewarm and prepare is None:
        # --warm: one untimed pass leaves the attached store populated;
        # the timed repetitions below are then served from it
        _clear_caches()
        suite(quick)
    walls: List[float] = []
    states = 0
    for _ in range(repeat):
        if prepare is not None:
            prepare(quick)
        _clear_caches()
        started = time.perf_counter()
        states = suite(quick)
        walls.append(time.perf_counter() - started)
    best = min(walls)
    return {
        "wall_s": round(best, 6),
        "wall_all_s": [round(w, 6) for w in walls],
        "states": states,
        "states_per_sec": round(states / best, 1) if best > 0 else None,
        "repeat": repeat,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single repetition, smaller synthesis domains (CI smoke)",
    )
    parser.add_argument(
        "--repeat", type=int, default=None,
        help="repetitions per suite (best-of; default 5, 1 with --quick)",
    )
    parser.add_argument(
        "--output", default=OUTPUT_PATH, help="where to write BENCH_core.json"
    )
    parser.add_argument(
        "--rebaseline", action="store_true",
        help="rewrite benchmarks/baseline_core.json from this run",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process count for sharded exploration (default: in-process; "
        "the finished graphs are bit-identical for any worker count)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "numpy", "pure", "interpreted"),
        default=None,
        help="kernel backend for every suite (default: leave the "
        "library's auto selection in place)",
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="attach an (empty) certificate store to every suite: the "
        "walls then include artifact recording overhead",
    )
    parser.add_argument(
        "--warm", action="store_true",
        help="attach a certificate store and run each suite once "
        "untimed first: the timed repetitions are served from the "
        "persisted artifacts",
    )
    parser.add_argument(
        "--store", default=None,
        help="store spec for --cold/--warm (default: a temporary "
        "sqlite file per run)",
    )
    args = parser.parse_args(argv)
    repeat = args.repeat or (1 if args.quick else 5)

    from repro.core import kernels as _kernels
    from repro.core.exploration import set_default_workers

    if args.backend is not None:
        _kernels.set_backend(args.backend)
    set_default_workers(args.workers)

    store_mode = "off"
    if args.cold or args.warm:
        from repro.store import backend as store_backend

        store_mode = "warm" if args.warm else "cold"
        spec = args.store
        if spec is None:
            fd, spec = tempfile.mkstemp(
                prefix="repro_bench_store_", suffix=".sqlite"
            )
            os.close(fd)
        store_backend.set_active_store(spec)
        _WARM_STORE["spec"] = spec
    elif args.store is not None:
        print("--store has no effect without --cold or --warm")

    baseline: Dict[str, Dict[str, object]] = {}
    if not args.rebaseline and os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)

    from repro.store import backend as _store_backend

    _store_backend.reset_stats()

    suites: Dict[str, Dict[str, object]] = {}
    speedups: Dict[str, float] = {}
    for name in SUITES:
        result = run_suite(name, repeat, args.quick, prewarm=args.warm)
        suites[name] = result
        base = baseline.get("suites", {}).get(name)
        line = (
            f"{name:24s} {result['wall_s']:9.4f}s  "
            f"{result['states']:6d} states"
        )
        # --quick shrinks the synthesis workload, so its wall time is
        # only comparable to a baseline recorded at the same scale
        comparable = base is not None and base.get("states") == result["states"]
        if comparable:
            speedup = float(base["wall_s"]) / float(result["wall_s"])
            speedups[name] = round(speedup, 2)
            line += f"  {speedup:6.2f}x vs baseline ({base['wall_s']}s)"
        print(line)

    payload = {
        "schema": 1,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "workers": args.workers,
        "backend": args.backend or "auto",
        "resolved_backend": _kernels.resolved_backend(),
        "suites": suites,
        "baseline": baseline or None,
        "speedup_vs_baseline": speedups,
        "store": {
            "mode": store_mode,
            "counters": _store_backend.stats(),
        },
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")

    if args.rebaseline:
        snapshot = {
            "recorded_at": payload["recorded_at"],
            "python": payload["python"],
            "platform": payload["platform"],
            "note": "pre-optimization baseline for speedup_vs_baseline",
            "suites": suites,
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
