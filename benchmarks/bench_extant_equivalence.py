"""EXTANT — Section 6's claim: systems designed with extant methods
(replication/voting) *are* detector-corrector compositions.

The composed ``DR;IR ‖ CR`` and a monolithic hand-written TMR voter are
mutually refining from the fault-span and achieve identical tolerance;
the bench times the mutual-refinement check."""

from repro.core import (
    Action,
    BOTTOM,
    Predicate,
    Program,
    assign,
    is_masking_tolerant,
    refines_program,
)


def monolithic_tmr(tmr_model) -> Program:
    unset = Predicate(lambda s: s["out"] is BOTTOM, "out=⊥")
    return Program(
        tmr_model.tmr.variables,
        [
            Action(
                "vote_x",
                unset & Predicate(lambda s: s["x"] == s["y"] or s["x"] == s["z"]),
                assign(out=lambda s: s["x"]),
            ),
            Action(
                "vote_y",
                unset & Predicate(lambda s: s["y"] == s["z"] or s["y"] == s["x"]),
                assign(out=lambda s: s["y"]),
            ),
            Action(
                "vote_z",
                unset & Predicate(lambda s: s["z"] == s["x"] or s["z"] == s["y"]),
                assign(out=lambda s: s["z"]),
            ),
        ],
        name="monolithic_tmr",
    )


def bench_extant_mutual_refinement(benchmark, tmr_model, report):
    monolithic = monolithic_tmr(tmr_model)

    def both_ways():
        forward = refines_program(tmr_model.tmr, monolithic, tmr_model.span)
        backward = refines_program(monolithic, tmr_model.tmr, tmr_model.span)
        return forward and backward

    assert benchmark(both_ways)
    report("EXTANT", "DR;IR ‖ CR and monolithic TMR are mutually refining")


def bench_extant_same_tolerance(benchmark, tmr_model, report):
    monolithic = monolithic_tmr(tmr_model)
    result = benchmark(
        lambda: is_masking_tolerant(
            monolithic, tmr_model.faults, tmr_model.spec,
            tmr_model.invariant, tmr_model.span,
        )
    )
    assert result
    report("EXTANT", "monolithic TMR achieves exactly the composed system's "
                     "masking tolerance")


def bench_extant_transition_counts(benchmark, tmr_model, report):
    """Efficiency claim: the composition adds no transitions over the
    monolithic design (same reachable graph size)."""
    from repro.core.refinement import system_from

    monolithic = monolithic_tmr(tmr_model)

    def measure():
        composed_ts = system_from(tmr_model.tmr, tmr_model.span)
        monolithic_ts = system_from(monolithic, tmr_model.span)
        composed_edges = sum(
            len(composed_ts.program_edges_from(s)) for s in composed_ts.states
        )
        monolithic_edges = sum(
            len(monolithic_ts.program_edges_from(s)) for s in monolithic_ts.states
        )
        return composed_edges, monolithic_edges, len(composed_ts.states), len(monolithic_ts.states)

    composed_edges, monolithic_edges, composed_states, monolithic_states = benchmark(measure)
    assert composed_states == monolithic_states
    report(
        "EXTANT",
        f"reachable graph: composed {composed_states} states/"
        f"{composed_edges} edges vs monolithic {monolithic_states}/"
        f"{monolithic_edges}",
    )
