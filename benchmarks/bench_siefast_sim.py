"""SIEFAST — the simulation environment (Section 7).

Throughput of the discrete-event kernel, fault-injection campaign over
the mutual-exclusion application (detector latency and corrector
recovery time distributions), and scheduler comparison on the token
ring."""

import random

import pytest

from repro.programs import mutual_exclusion, token_ring
from repro.sim import (
    ChannelConfig,
    CrashInjector,
    Network,
    PredicateMonitor,
    RandomScheduler,
    RoundRobinScheduler,
    SimProcess,
    convergence_steps,
    simulate,
)


class Gossiper(SimProcess):
    """Each received rumour is forwarded to the next process — a
    message-churn workload for throughput measurement."""

    def __init__(self, pid, peers):
        super().__init__(pid)
        self.peers = peers
        self.seen = 0

    def on_start(self):
        if self.pid == 0:
            for _ in range(10):
                self.send(self.peers[0], "rumour")

    def on_message(self, sender, message):
        self.seen += 1
        if self.seen < 200:
            self.send(self.peers[self.seen % len(self.peers)], message)


def bench_siefast_kernel_throughput(benchmark, report):
    def run():
        network = Network(seed=1, default_channel=ChannelConfig(delay=0.5))
        size = 8
        for pid in range(size):
            peers = [p for p in range(size) if p != pid]
            network.add_process(Gossiper(pid, peers))
        network.run(until=2000)
        return network.simulator.events_processed

    events = benchmark(run)
    assert events > 1000
    report("SIEFAST", f"gossip workload: {events} events per run")


def bench_siefast_crash_campaign(benchmark, report):
    """Crash/restart campaign with an online global-predicate monitor —
    availability of 'someone is answering' across the campaign."""

    class Server(SimProcess):
        def __init__(self, pid):
            super().__init__(pid)
            self.answered = 0

        def on_message(self, sender, message):
            self.answered += 1
            self.send(sender, "ack")

    class Client(SimProcess):
        def __init__(self, pid, servers):
            super().__init__(pid)
            self.servers = servers
            self.acks = 0
            self.sent = 0

        def on_start(self):
            self.set_timer("tick", 1.0)

        def on_timer(self, name):
            self.send(self.servers[self.sent % len(self.servers)], "req")
            self.sent += 1
            self.set_timer("tick", 1.0)

        def on_message(self, sender, message):
            self.acks += 1

    def run():
        network = Network(seed=7, default_channel=ChannelConfig(delay=0.2))
        for sid in ("s1", "s2"):
            network.add_process(Server(sid))
        client = network.add_process(Client("c", servers=["s1", "s2"]))
        from repro.sim import RestartInjector

        CrashInjector(time=20.0, pid="s1").arm(network)
        RestartInjector(time=40.0, pid="s1").arm(network)
        CrashInjector(time=60.0, pid="s2").arm(network)
        monitor = PredicateMonitor(
            network,
            predicate=lambda snap: not (
                snap["s1"]["crashed"] and snap["s2"]["crashed"]
            ),
            period=1.0,
        )
        network.run(until=100)
        return client.acks, monitor.fraction_true()

    acks, availability = benchmark(run)
    assert acks > 0
    assert availability == 1.0, "at most one server is ever down"
    report("SIEFAST", f"crash campaign: {acks} acks, service availability "
                      f"{availability:.2f}")


def bench_siefast_mutex_recovery_distribution(benchmark, report):
    """Corrector recovery time: steps from token loss to regeneration
    across random schedules (the runtime counterpart of the nonmasking
    convergence certificate)."""
    model = mutual_exclusion.build(3)
    legitimate = next(
        s for s in model.tolerant.states() if model.invariant(s)
    )

    def campaign():
        recovery_steps = []
        for seed in range(20):
            trace = simulate(
                model.tolerant, legitimate, RandomScheduler(seed),
                steps=60, faults=model.faults, fault_times=[5],
            )
            lost_at = None
            for index, state in enumerate(trace):
                tokens = sum(
                    1 for i in range(model.size) if state[f"tok{i}"]
                )
                if tokens == 0 and lost_at is None:
                    lost_at = index
                if lost_at is not None and tokens == 1:
                    recovery_steps.append(index - lost_at)
                    break
        return recovery_steps

    recoveries = benchmark(campaign)
    assert recoveries and all(r >= 1 for r in recoveries)
    mean = sum(recoveries) / len(recoveries)
    report("SIEFAST", f"mutex corrector recovery: mean {mean:.1f} steps over "
                      f"{len(recoveries)} injected token losses")


@pytest.mark.parametrize("scheduler_name", ["random", "round_robin"])
def bench_siefast_scheduler_comparison(benchmark, report, scheduler_name):
    model = token_ring.build(4)
    rng = random.Random(0)
    states = list(model.ring.states())
    starts = [rng.choice(states) for _ in range(20)]

    def run():
        total = 0
        for index, start in enumerate(starts):
            scheduler = (
                RandomScheduler(index)
                if scheduler_name == "random"
                else RoundRobinScheduler()
            )
            steps = convergence_steps(
                model.ring, start, model.invariant, scheduler
            )
            assert steps is not None
            total += steps
        return total / len(starts)

    mean = benchmark(run)
    report("SIEFAST", f"token-ring stabilization, {scheduler_name} scheduler: "
                      f"mean {mean:.1f} moves")
