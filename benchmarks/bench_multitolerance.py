"""MULTI — multitolerance (the paper's concluding programme / [4]).

The mutual-exclusion application made masking tolerant to *two*
fault-classes at once — token loss (regeneration corrector) and token
duplication (one-token entry detector + dedup corrector) — including
the interaction check where both classes strike in one run."""

from repro.core import (
    ToleranceRequirement,
    is_masking_tolerant,
    is_multitolerant,
)


def _requirements(mutex):
    return (
        ToleranceRequirement(mutex.faults, "masking", mutex.span),
        ToleranceRequirement(mutex.duplication, "masking",
                             mutex.span_duplication),
    )


def bench_multi_combined_requirement(benchmark, mutex, report):
    result = benchmark(
        lambda: is_multitolerant(
            mutex.multitolerant, mutex.spec_strong, mutex.invariant,
            _requirements(mutex),
        )
    )
    assert result
    report("MULTI", "mutex is masking tolerant to loss AND duplication "
                    "(with interaction check): PASS")


def bench_multi_single_class_baseline(benchmark, mutex, report):
    result = benchmark(
        lambda: is_masking_tolerant(
            mutex.tolerant, mutex.faults, mutex.spec, mutex.invariant,
            mutex.span,
        )
    )
    assert result
    report("MULTI", "baseline: single-fault-class mutex is masking to loss")


def bench_multi_baseline_fails_duplication(benchmark, mutex, report):
    result = benchmark(
        lambda: is_masking_tolerant(
            mutex.tolerant, mutex.duplication, mutex.spec_strong,
            mutex.invariant, mutex.span_duplication,
        )
    )
    assert not result
    report("MULTI", "baseline mutex is NOT tolerant to duplication "
                    "(counterexample produced)")
