#!/usr/bin/env python
"""Fail when the benchmark suites regress against the committed record.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --current run.json
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.5

Compares a fresh quick-mode run (or ``--current``, a JSON produced by
``record.py``) against the committed ``BENCH_core.json`` and exits
non-zero when any comparable suite is more than ``--threshold``
(default 30%) slower than the committed wall time.

Two guards keep the gate honest rather than flaky:

- only suites whose explored ``states`` count matches the committed
  record are compared — quick mode shrinks the ``synthesis``,
  ``token_ring_stabilization``, and ``byzantine_scaling_sym``
  workloads, so their walls are not commensurable with the full-scale
  record.  For the suites in ``record.STATE_GATED`` (symmetry-quotient
  workloads that run the same instance in both modes) a state-count
  mismatch is itself a FAILURE: the count is the quotient's orbit
  census, and a canonicalization change that alters it is a
  correctness bug, not a workload change;
- suites whose committed wall is below ``--min-wall`` (default 10 ms)
  are reported but never gated: at sub-millisecond scale the wall
  measures scheduler noise, not the engine.

Suites listed in ``record.THROUGHPUT_FLOORS`` additionally carry an
absolute states-per-second floor (for ``campaign_distributed``,
trials/sec through the job queue): the relative gate only compares
against the committed record, so an absolute floor catches a run whose
record was committed on an already-degraded machine.

Fresh runs use best-of ``--repeat`` (default 3) to damp one-off stalls.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
from typing import Dict, List

HERE = os.path.dirname(os.path.abspath(__file__))
RECORD_PATH = os.path.join(HERE, "..", "BENCH_core.json")


def _harness():
    spec = importlib.util.spec_from_file_location(
        "_bench_record", os.path.join(HERE, "record.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record", default=RECORD_PATH,
        help="committed benchmark record to compare against",
    )
    parser.add_argument(
        "--current", default=None,
        help="JSON of the run under test (default: run quick suites now)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="maximum tolerated slowdown, as a fraction (default 0.30)",
    )
    parser.add_argument(
        "--min-wall", type=float, default=0.010,
        help="committed walls below this many seconds are never gated",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="repetitions (best-of) when running the suites here",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.record, encoding="utf-8") as fh:
            committed: Dict[str, dict] = json.load(fh)["suites"]
    except (OSError, KeyError, ValueError) as exc:
        print(f"cannot read committed record {args.record!r}: {exc}")
        return 2

    harness = _harness()
    state_gated = getattr(harness, "STATE_GATED", frozenset())
    if args.current:
        try:
            with open(args.current, encoding="utf-8") as fh:
                current: Dict[str, dict] = json.load(fh)["suites"]
        except (OSError, KeyError, ValueError) as exc:
            print(f"cannot read current record {args.current!r}: {exc}")
            return 2
    else:
        current = {
            name: harness.run_suite(name, args.repeat, quick=True)
            for name in harness.SUITES
        }

    floors = getattr(harness, "THROUGHPUT_FLOORS", {})
    failures = 0
    for name, result in current.items():
        wall = float(result["wall_s"])
        floor = floors.get(name)
        if floor is not None and wall > 0 and result.get("states"):
            rate = float(result["states"]) / wall
            if rate < floor:
                print(
                    f"{name:26s} {rate:9.1f} states/s   "
                    f"BELOW FLOOR ({floor:.1f} states/s)"
                )
                failures += 1
        base = committed.get(name)
        if base is None or base.get("states") != result.get("states"):
            if base is not None and name in state_gated:
                print(
                    f"{name:26s} {result.get('states')} states   "
                    f"committed {base.get('states')}   STATE-COUNT MISMATCH "
                    f"(quotient census must match exactly)"
                )
                failures += 1
            else:
                print(
                    f"{name:26s} {wall:9.4f}s   "
                    f"(no comparable committed wall)"
                )
            continue
        base_wall = float(base["wall_s"])
        ratio = wall / base_wall if base_wall > 0 else 1.0
        line = (
            f"{name:26s} {wall:9.4f}s   committed {base_wall:.4f}s "
            f"({ratio:5.2f}x)"
        )
        if base_wall < args.min_wall:
            print(line + "   [below --min-wall, not gated]")
        elif ratio > 1.0 + args.threshold:
            print(line + f"   REGRESSION (> {args.threshold:.0%} slower)")
            failures += 1
        else:
            print(line)

    if failures:
        print(f"{failures} suite(s) failed the benchmark gate")
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
