"""FIG2 — Figure 2 / Section 4.3: nonmasking memory access.

The corrector program ``pn`` re-adds the missing entry; the composed
system transiently errs but converges — nonmasking tolerance, certified
by Theorem 4.3 with S = X1 and T = true.
"""

from repro import theory
from repro.core import (
    is_failsafe_tolerant,
    is_nonmasking_tolerant,
)


def bench_fig2_pn_nonmasking_certificate(benchmark, memory, report):
    result = benchmark(
        lambda: is_nonmasking_tolerant(
            memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        )
    )
    assert result
    report("FIG2", "pn is nonmasking page-fault-tolerant to SPEC_mem: PASS")


def bench_fig2_pn_is_not_failsafe(benchmark, memory, report):
    """The separation the figure illustrates: the corrector-only
    program sacrifices transient safety."""
    result = benchmark(
        lambda: is_failsafe_tolerant(
            memory.pn, memory.fault_anytime, memory.spec,
            memory.S_pn, memory.T_pn,
        )
    )
    assert not result
    report("FIG2", "pn is NOT fail-safe tolerant (transient wrong data): "
                   "counterexample produced")


def bench_fig2_theorem_4_3_extraction(benchmark, memory, report):
    result = benchmark(
        lambda: theory.theorem_4_3(
            memory.pn, memory.p, memory.spec,
            invariant=memory.S_p, restored=memory.S_pn,
            span=memory.T_pn, faults=memory.fault_anytime,
        )
    )
    assert result
    report("FIG2", "Theorem 4.3 on (pn, p): corrector extracted and verified")
