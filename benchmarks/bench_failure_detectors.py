"""FD — the Chandra–Toueg comparison (Section 7).

Model-level: the heartbeat failure detector IS a detector (of its
timeout predicate), satisfies completeness, refutes strong accuracy.
Simulation-level: detection latency vs timeout, and the latency /
false-suspicion tradeoff under loss and jitter."""

import pytest

from repro.core import is_detector
from repro.core.fairness import check_leads_to
from repro.failure_detectors import build, run_crash_experiment


@pytest.fixture(scope="module")
def fd():
    return build(limit=2)


def bench_fd_is_detector(benchmark, fd, report):
    result = benchmark(
        lambda: is_detector(fd.program, fd.suspected, fd.timed_out, fd.from_)
    )
    assert result
    report("FD", "heartbeat FD refines 'suspect detects timeout'")


def bench_fd_completeness(benchmark, fd, report):
    def check():
        ts = fd.faults.system(fd.program, fd.from_)
        return check_leads_to(ts, fd.crashed, fd.suspected)

    assert benchmark(check)
    report("FD", "completeness: crashed leads-to suspected")


def bench_fd_strong_accuracy_refuted(benchmark, fd, report):
    result = benchmark(
        lambda: is_detector(fd.program, fd.suspected, fd.crashed, fd.from_)
    )
    assert not result
    report("FD", "strong accuracy refuted (asynchrony counterexample)")


@pytest.mark.parametrize("timeout", [1.5, 3.0, 6.0, 12.0])
def bench_fd_latency_vs_timeout(benchmark, report, timeout):
    result = benchmark(
        lambda: run_crash_experiment(
            timeout, jitter=0.5, loss_probability=0.05, seed=11
        )
    )
    assert result.detection_latency is not None
    report("FD", result.as_row())
