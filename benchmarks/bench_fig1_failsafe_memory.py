"""FIG1 — Figure 1 / Section 3.3: fail-safe memory access.

Regenerates the paper's first construction: the intolerant program ``p``
violates SPEC_mem under a page fault; adding the detector (program
``pf``) yields fail-safe tolerance — certified by Theorem 3.6 with the
paper's own predicates X1, Z1, U1, S = U1 ∧ X1, T = U1.
"""

from repro import theory
from repro.core import is_failsafe_tolerant, refines_spec, violates_spec


def bench_fig1_pf_failsafe_certificate(benchmark, memory, report):
    result = benchmark(
        lambda: is_failsafe_tolerant(
            memory.pf, memory.fault_before_witness, memory.spec,
            memory.S_pf, memory.T_pf,
        )
    )
    assert result
    report("FIG1", "pf is fail-safe page-fault-tolerant to SPEC_mem: PASS")


def bench_fig1_intolerant_p_violates(benchmark, memory, report):
    violation = benchmark(
        lambda: violates_spec(
            memory.p, memory.spec.safety_part(), memory.S_p,
            fault_actions=list(memory.fault_anytime.actions),
        )
    )
    assert violation
    report("FIG1", "intolerant p violates safety(SPEC_mem) under page fault: "
                   "counterexample produced")


def bench_fig1_theorem_3_6_extraction(benchmark, memory, report):
    """The theorem that *explains* Figure 1: the fail-safe program
    contains a fail-safe tolerant detector of a detection predicate of
    p's action — witness constructed and model-checked."""
    result = benchmark(
        lambda: theory.theorem_3_6(
            memory.pf, memory.p, memory.spec,
            invariant_base=memory.S_p, invariant_refined=memory.S_pf,
            span=memory.T_pf, faults=memory.fault_before_witness,
        )
    )
    assert result
    report("FIG1", "Theorem 3.6 on (pf, p): detector extracted and verified")


def bench_fig1_absence_of_faults(benchmark, memory, report):
    """In the absence of faults pf still refines full SPEC_mem."""
    result = benchmark(
        lambda: refines_spec(memory.pf, memory.spec, memory.S_pf)
    )
    assert result
    report("FIG1", "pf refines SPEC_mem from S in the absence of faults")
